"""The Fig. 2 proof system: certificate language, builder and kernel."""

from repro.proofs.builder import (
    build_all_nash_certificate,
    build_dominance_certificate,
    build_all_strat_certificate,
    build_max_nash_certificate,
    build_nash_certificate,
    build_not_nash_certificate,
)
from repro.proofs.certificates import (
    AllNashCertificate,
    DominanceCertificate,
    AllStratCertificate,
    Certificate,
    ComparisonStep,
    CounterexampleStep,
    DeviationStep,
    MaxNashCertificate,
    NashCertificate,
    NotNashCertificate,
)
from repro.proofs.checker import CheckResult, ProofKernel, check_certificate
from repro.proofs.serialize import (
    certificate_from_json,
    certificate_size_bytes,
    certificate_to_json,
    decode_certificate,
    encode_certificate,
)

__all__ = [
    "DominanceCertificate",
    "build_dominance_certificate",
    "AllNashCertificate",
    "AllStratCertificate",
    "Certificate",
    "ComparisonStep",
    "CounterexampleStep",
    "DeviationStep",
    "MaxNashCertificate",
    "NashCertificate",
    "NotNashCertificate",
    "CheckResult",
    "ProofKernel",
    "check_certificate",
    "build_all_nash_certificate",
    "build_all_strat_certificate",
    "build_max_nash_certificate",
    "build_nash_certificate",
    "build_not_nash_certificate",
    "certificate_from_json",
    "certificate_size_bytes",
    "certificate_to_json",
    "decode_certificate",
    "encode_certificate",
]
