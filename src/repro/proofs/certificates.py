"""Proof certificates: the objects an inventor sends and a verifier checks.

A certificate is pure data — profiles, indices, and sub-certificates —
with no executable content.  The kernel (:mod:`repro.proofs.checker`)
re-derives every claim from the game's utility oracle.  This mirrors the
paper's design space (Sect. 1): "a detailed logic proof ... or even an
empty proof relying on the verifier procedure to check the suggested
actions in the style of nondeterministic Turing machines."

Certificate forms:

* :class:`DeviationStep` / :class:`CounterexampleStep` — single utility
  comparisons;
* :class:`NashCertificate` — ``isNash``, either *explicit* (every
  deviation listed, kernel checks coverage) or *by-evaluation* (the
  paper's "empty proof": the kernel enumerates deviations itself);
* :class:`NotNashCertificate` — refutation by one counterexample;
* :class:`AllStratCertificate` — the ``allStrat`` enumeration; the kernel
  accepts it iff the list is duplicate-free, in-bounds and of full
  cardinality Π|Ai| (which together imply exhaustiveness);
* :class:`AllNashCertificate` — the ``allNash`` classification of every
  profile as equilibrium or refuted;
* :class:`ComparisonStep` — one ``leStrat`` or ``noComp`` fact;
* :class:`MaxNashCertificate` — ``isMaxNash``: candidate is Nash, the
  equilibrium list is complete, and every equilibrium is dominated-or-
  incomparable (``NashMax``, Fig. 2 line 36).  A ``minimal`` flag flips
  the comparison direction per footnote 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.errors import ProofError
from repro.games.profiles import PureProfile


def _freeze_profile(profile: Sequence[int]) -> PureProfile:
    try:
        return tuple(int(a) for a in profile)
    except (TypeError, ValueError) as exc:
        raise ProofError(f"malformed profile in certificate: {profile!r}") from exc


@dataclass(frozen=True)
class DeviationStep:
    """Claims ``u_player(profile) >= u_player(change(profile, action, player))``."""

    player: int
    action: int


@dataclass(frozen=True)
class CounterexampleStep:
    """Claims ``u_player(profile) < u_player(change(profile, action, player))``."""

    player: int
    action: int


@dataclass(frozen=True)
class NashCertificate:
    """``isNash(profile)``.

    ``mode='explicit'`` lists every deviation check; the kernel verifies
    each listed step *and* that the steps cover every (player, action)
    pair.  ``mode='by-evaluation'`` is the paper's empty proof: no steps,
    the kernel enumerates and checks all deviations itself.
    """

    profile: PureProfile
    mode: Literal["explicit", "by-evaluation"] = "explicit"
    steps: tuple[DeviationStep, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "profile", _freeze_profile(self.profile))
        if self.mode not in ("explicit", "by-evaluation"):
            raise ProofError(f"unknown NashCertificate mode {self.mode!r}")
        if self.mode == "by-evaluation" and self.steps:
            raise ProofError("by-evaluation certificates must not carry steps")


@dataclass(frozen=True)
class NotNashCertificate:
    """``not isNash(profile)`` via a single profitable-deviation witness."""

    profile: PureProfile
    counterexample: CounterexampleStep

    def __post_init__(self):
        object.__setattr__(self, "profile", _freeze_profile(self.profile))


@dataclass(frozen=True)
class AllStratCertificate:
    """``allStrat``: the claimed exhaustive profile enumeration."""

    profiles: tuple[PureProfile, ...]

    def __post_init__(self):
        object.__setattr__(
            self, "profiles", tuple(_freeze_profile(p) for p in self.profiles)
        )


@dataclass(frozen=True)
class AllNashCertificate:
    """``allNash``: every profile classified as equilibrium or refuted.

    ``equilibria`` is the claimed list of all pure Nash equilibria;
    ``refutations`` carries a :class:`NotNashCertificate` for every other
    profile of the enumeration.
    """

    enumeration: AllStratCertificate
    equilibria: tuple[NashCertificate, ...]
    refutations: tuple[NotNashCertificate, ...]


@dataclass(frozen=True)
class ComparisonStep:
    """One ``NashMax`` disjunct for equilibrium ``profile``.

    ``kind='le'`` claims ``profile <=_u candidate`` (``leStrat``);
    ``kind='nocomp'`` claims incomparability with explicit witnesses
    (i, j).  For minimal-Nash certificates the ``le`` direction reverses.
    """

    profile: PureProfile
    kind: Literal["le", "nocomp"]
    witness_i: int = -1
    witness_j: int = -1

    def __post_init__(self):
        object.__setattr__(self, "profile", _freeze_profile(self.profile))
        if self.kind not in ("le", "nocomp"):
            raise ProofError(f"unknown comparison kind {self.kind!r}")
        if self.kind == "nocomp" and (self.witness_i < 0 or self.witness_j < 0):
            raise ProofError("nocomp steps need non-negative witnesses")


@dataclass(frozen=True)
class MaxNashCertificate:
    """``isMaxNash(candidate)`` (or minimal-Nash with ``minimal=True``).

    Contains: the candidate's own Nash certificate, the full ``allNash``
    classification, and one comparison disjunct per claimed equilibrium.
    """

    candidate: PureProfile
    candidate_proof: NashCertificate
    all_nash: AllNashCertificate
    comparisons: tuple[ComparisonStep, ...]
    minimal: bool = False

    def __post_init__(self):
        object.__setattr__(self, "candidate", _freeze_profile(self.candidate))


@dataclass(frozen=True)
class DominanceCertificate:
    """Claims ``profile`` is a (weakly/strictly) dominant-strategy
    equilibrium.

    Dominance quantifies over the entire opponent profile space, so the
    only practical proof format is the paper's "empty proof": the kernel
    performs the sweep itself.  The certificate still carries the claim
    explicitly (profile + strictness), so it serializes, travels the bus
    and is tamper-checked like every other proof object.
    """

    profile: PureProfile
    strict: bool = False

    def __post_init__(self):
        object.__setattr__(self, "profile", _freeze_profile(self.profile))


#: Union of all top-level certificate types the kernel accepts.
Certificate = (
    NashCertificate
    | NotNashCertificate
    | AllStratCertificate
    | AllNashCertificate
    | MaxNashCertificate
    | DominanceCertificate
)
