"""Fraction-free exact kernel: integer Bareiss elimination.

:mod:`repro.linalg.exact` — the seed's reference arithmetic — runs
Gauss-Jordan directly over :class:`~fractions.Fraction`, which hides a
gcd normalization inside *every* add and multiply.  On the small dense
systems certification produces, those per-step gcds dominate the exact
path's cost.  This module removes them without touching exactness:

1. **Integerize once.**  Rational input is cleared to an integer
   lattice by LCM scaling (:func:`integerize_matrix` /
   :func:`integerize_vector`); inside the elimination everything is a
   Python ``int``.
2. **Bareiss fraction-free elimination.**  Cross-multiplication updates
   with an exact division by the previous pivot (Bareiss 1968) keep the
   intermediate entries integral *by construction* — no per-step gcd,
   and coefficient growth bounded by minor sizes instead of exploding.
3. **Fractions only at the boundary.**  Results are reconstructed as
   Fractions on the way out, so every public function here is a
   drop-in, bit-identical replacement for its :mod:`repro.linalg.exact`
   counterpart (same :data:`Matrix`/:data:`Vector` types, same values,
   same exceptions) — the property tests pin that equivalence on
   rank-deficient and degenerate systems too.

The module also supplies the two integerization services the rest of
the pipeline certifies on: :class:`IntegerLattice` (a bimatrix game's
payoffs cleared to a common-denominator integer lattice, cached on the
game) and :func:`integer_utility_table` (a finite game's whole utility
table scaled per player, the proof kernel's comparison currency).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from fractions import Fraction
from math import lcm  # repro: allow[R1] -- lcm is exact integer arithmetic; no float can leave it
from typing import Sequence

from repro.errors import LinearAlgebraError
from repro.fractions_util import fraction_matrix, fraction_vector
from repro.linalg.exact import Vector, _nullspace_from_rref

_ZERO = Fraction(0)


# ----------------------------------------------------------------------
# Integerization: clearing rationals to an integer lattice
# ----------------------------------------------------------------------


def integerize_vector(values: Sequence[Fraction]) -> tuple[tuple[int, ...], int]:
    """Clear a rational vector to integers: ``(ints, scale)``.

    ``scale`` is the LCM of the denominators, so ``ints[i] / scale``
    reconstructs the input exactly and ``scale`` is the smallest
    positive integer with that property.
    """
    values = fraction_vector(values)
    scale = lcm(*(v.denominator for v in values)) if values else 1
    return (
        tuple(v.numerator * (scale // v.denominator) for v in values),
        scale,
    )


def integerize_matrix(
    rows: Sequence[Sequence[Fraction]],
) -> tuple[tuple[tuple[int, ...], ...], int]:
    """Clear a rational matrix to integers with one global LCM scale.

    Returns ``(int_rows, scale)`` with ``int_rows[i][j] / scale`` equal
    to the input entry.  One scale for the whole matrix — exactly what
    order-preserving payoff comparisons need: multiplying every entry
    by the same positive integer never changes which entries compare
    equal or larger.
    """
    rows = fraction_matrix(rows)
    scale = lcm(*(v.denominator for row in rows for v in row)) if rows else 1
    return (
        tuple(
            tuple(v.numerator * (scale // v.denominator) for v in row)
            for row in rows
        ),
        scale,
    )


@dataclass(frozen=True)
class IntegerLattice:
    """A bimatrix game's payoffs on the integer lattice.

    ``row_payoffs`` is ``row_scale * A`` and ``column_payoffs`` is
    ``column_scale * B^T`` (the column agent viewed through its own
    payoff rows), all entries Python ints.  Scaling is per matrix, which
    is sound for certification: the Lemma-1 support conditions only ever
    compare one player's payoffs with each other.  Built once per game
    and cached on :class:`~repro.games.bimatrix.BimatrixGame` next to
    ``payoff_fingerprint``, so every candidate of a game certifies on
    the same pre-cleared tensors.
    """

    row_payoffs: tuple[tuple[int, ...], ...]
    column_payoffs: tuple[tuple[int, ...], ...]
    row_scale: int
    column_scale: int

    @classmethod
    def from_matrices(cls, a_matrix, b_transposed) -> "IntegerLattice":
        ia, sa = integerize_matrix(a_matrix)
        ibt, sb = integerize_matrix(b_transposed)
        return cls(
            row_payoffs=ia, column_payoffs=ibt, row_scale=sa, column_scale=sb
        )


# ----------------------------------------------------------------------
# The Bareiss kernel
# ----------------------------------------------------------------------


def _exact_div(value: int, divisor: int) -> int:
    """Bareiss's exact division; raises if the theory were ever violated.

    Every division the fraction-free updates perform is provably exact
    (the intermediate entries are minors of the integer input).  The
    remainder check costs one divmod and turns a hypothetical bug into a
    loud error instead of a silently wrong "exact" answer.
    """
    quotient, remainder = divmod(value, divisor)
    if remainder:
        raise LinearAlgebraError(
            "Bareiss exact division failed (internal error)"
        )
    return quotient


def _integerize_augmented(a, b):
    """Per-row integer clearing of the augmented block ``[A | B]``.

    Returns ``(int_a, int_b, scales)`` where row ``i`` of the input
    equals ``(int_a[i], int_b[i]) / scales[i]``.  Per-row scaling keeps
    the integers smaller than one global LCM would and changes neither
    the row space nor the RREF.
    """
    int_a, int_b, scales = [], [], []
    for row, rhs_row in zip(a, b):
        scale = lcm(*(v.denominator for v in row), *(v.denominator for v in rhs_row)) \
            if (row or rhs_row) else 1
        int_a.append([v.numerator * (scale // v.denominator) for v in row])
        int_b.append([v.numerator * (scale // v.denominator) for v in rhs_row])
        scales.append(scale)
    return int_a, int_b, scales


def _bareiss_jordan(int_a, int_b, scales):
    """Fraction-free Gauss-Jordan over the integer augmented block.

    In place.  Returns ``(denominator, pivot_cols)``: on exit every
    pivot row equals ``denominator`` times its RREF row, and every
    non-pivot row equals ``scales[i] * denominator`` times the Fraction
    Gauss-Jordan state of the original row (``scales`` is permuted
    alongside the row swaps so the caller can divide the initial
    clearing back out).

    Pivot selection — first row at or below the cursor with a nonzero
    entry, leftmost column first — matches
    :func:`repro.linalg.exact.gaussian_elimination` exactly; the two
    algorithms therefore take identical row swaps and reach identical
    reduced forms.
    """
    nrows = len(int_a)
    ncols = len(int_a[0]) if int_a else 0
    denominator = 1
    pivot_cols: list[int] = []
    row = 0
    for col in range(ncols):
        if row >= nrows:
            break
        pivot = next((r for r in range(row, nrows) if int_a[r][col]), None)
        if pivot is None:
            continue
        int_a[row], int_a[pivot] = int_a[pivot], int_a[row]
        int_b[row], int_b[pivot] = int_b[pivot], int_b[row]
        scales[row], scales[pivot] = scales[pivot], scales[row]
        p = int_a[row][col]
        a_pivot_row = int_a[row]
        b_pivot_row = int_b[row]
        for r in range(nrows):
            if r == row:
                continue
            factor = int_a[r][col]
            if factor:
                a_row = int_a[r]
                b_row = int_b[r]
                int_a[r] = [
                    _exact_div(p * x - factor * y, denominator)
                    for x, y in zip(a_row, a_pivot_row)
                ]
                int_b[r] = [
                    _exact_div(p * x - factor * y, denominator)
                    for x, y in zip(b_row, b_pivot_row)
                ]
            elif p != denominator:
                # Keep every row on the uniform running denominator so
                # later exact divisions stay exact (the Bareiss
                # invariant covers scaled-but-untouched rows too).
                int_a[r] = [_exact_div(p * x, denominator) for x in int_a[r]]
                int_b[r] = [_exact_div(p * x, denominator) for x in int_b[r]]
        denominator = p
        pivot_cols.append(col)
        row += 1
    return denominator, pivot_cols


def bareiss_elimination(
    matrix: Sequence[Sequence], rhs: Sequence[Sequence] | None = None
):
    """Reduce ``matrix`` (plus optional rhs block) to RREF, fraction-free.

    Drop-in, bit-identical replacement for
    :func:`repro.linalg.exact.gaussian_elimination`: same signature,
    same ``(rref, rhs_rref, pivot_columns)`` result (RREF is canonical,
    and the carried rhs block goes through the same row operations), but
    computed on the integer lattice with a single reconstruction
    division per entry at the boundary.
    """
    a = fraction_matrix(matrix)
    nrows = len(a)
    if rhs is not None:
        b = fraction_matrix(rhs)
        if len(b) != nrows:
            raise LinearAlgebraError("rhs row count does not match matrix")
    else:
        b = tuple(() for _ in range(nrows))

    int_a, int_b, scales = _integerize_augmented(a, b)
    denominator, pivot_cols = _bareiss_jordan(int_a, int_b, scales)

    rank = len(pivot_cols)
    rref_rows = []
    rhs_rows = []
    for i in range(nrows):
        # Pivot rows carry the uniform denominator; rows below the rank
        # additionally keep their initial integer clearing.
        divisor = denominator if i < rank else denominator * scales[i]
        rref_rows.append(tuple(Fraction(x, divisor) for x in int_a[i]))
        rhs_rows.append(tuple(Fraction(x, divisor) for x in int_b[i]))
    return tuple(rref_rows), tuple(rhs_rows), tuple(pivot_cols)


def matrix_rank(matrix: Sequence[Sequence]) -> int:
    """Exact rank, via the fraction-free kernel."""
    a = fraction_matrix(matrix)
    if not a:
        return 0
    int_a, int_b, scales = _integerize_augmented(a, tuple(() for _ in a))
    __, pivots = _bareiss_jordan(int_a, int_b, scales)
    return len(pivots)


def solve_square(matrix: Sequence[Sequence], rhs: Sequence) -> Vector:
    """Solve a square nonsingular system exactly, fraction-free.

    Bit-identical to :func:`repro.linalg.exact.solve_square` (the
    solution of a nonsingular system is unique): forward Bareiss
    elimination to an integer echelon form, then the
    Nakos-Turner-Williams integer back-substitution — divisions by the
    pivots are exact, and the one reconstruction division per unknown
    happens at the Fraction boundary.
    """
    a = fraction_matrix(matrix)
    b = fraction_vector(rhs)
    n = len(a)
    if n == 0:
        return ()
    if any(len(row) != n for row in a):
        raise LinearAlgebraError("solve_square requires a square matrix")
    if len(b) != n:
        raise LinearAlgebraError("rhs length does not match matrix")

    int_a, int_b, __ = _integerize_augmented(a, [[x] for x in b])
    rows = [int_a[i] + int_b[i] for i in range(n)]

    # Forward Bareiss: only rows below the pivot are touched.
    denominator = 1
    for col in range(n):
        pivot = next((r for r in range(col, n) if rows[r][col]), None)
        if pivot is None:
            raise LinearAlgebraError("matrix is singular")
        rows[col], rows[pivot] = rows[pivot], rows[col]
        p = rows[col][col]
        pivot_row = rows[col]
        for r in range(col + 1, n):
            factor = rows[r][col]
            if factor:
                rows[r] = [
                    _exact_div(p * x - factor * y, denominator)
                    for x, y in zip(rows[r], pivot_row)
                ]
            elif p != denominator:
                rows[r] = [_exact_div(p * x, denominator) for x in rows[r]]
        denominator = p

    # Integer back-substitution: x_j = y_j / det with y_j integral.
    det = rows[n - 1][n - 1]
    y = [0] * n
    for j in range(n - 1, -1, -1):
        total = det * rows[j][n]
        for l in range(j + 1, n):
            total -= rows[j][l] * y[l]
        y[j] = _exact_div(total, rows[j][j])
    return tuple(Fraction(y_j, det) for y_j in y)


def solve_linear_system(matrix: Sequence[Sequence], rhs: Sequence):
    """Solve a general system exactly, fraction-free.

    Bit-identical to :func:`repro.linalg.exact.solve_linear_system`:
    same ``(particular, basis)`` result, same
    :class:`~repro.errors.LinearAlgebraError` on inconsistent input.
    The inconsistency test runs on raw integers (a zero row's scaled rhs
    is nonzero iff the rational rhs is) and only the entries the
    particular solution and nullspace basis actually need are
    reconstructed as Fractions.
    """
    a = fraction_matrix(matrix)
    b = fraction_vector(rhs)
    nrows = len(a)
    if len(b) != nrows:
        raise LinearAlgebraError("rhs length does not match matrix")
    ncols = len(a[0]) if a else 0

    int_a, int_b, scales = _integerize_augmented(a, [[x] for x in b])
    denominator, pivot_cols = _bareiss_jordan(int_a, int_b, scales)
    rank = len(pivot_cols)

    # Inconsistency: a zero matrix row with nonzero rhs (integers
    # suffice — the boundary division never changes zeroness).
    for i in range(rank, nrows):
        if int_b[i][0] and not any(int_a[i]):
            raise LinearAlgebraError("linear system is inconsistent")

    particular = [_ZERO] * ncols
    for row_idx, col in enumerate(pivot_cols):
        particular[col] = Fraction(int_b[row_idx][0], denominator)

    pivot_set = set(pivot_cols)
    free_cols = [c for c in range(ncols) if c not in pivot_set]
    basis = []
    for free in free_cols:
        vec = [_ZERO] * ncols
        vec[free] = Fraction(1)
        for row_idx, col in enumerate(pivot_cols):
            vec[col] = Fraction(-int_a[row_idx][free], denominator)
        basis.append(tuple(vec))
    return tuple(particular), tuple(basis)


def nullspace(matrix: Sequence[Sequence]) -> tuple[Vector, ...]:
    """Exact nullspace basis, via the fraction-free kernel."""
    a = fraction_matrix(matrix)
    if not a:
        return ()
    ncols = len(a[0])
    rref, __, pivots = bareiss_elimination(a)
    return _nullspace_from_rref(rref, pivots, ncols)


# ----------------------------------------------------------------------
# Integer utility tables (the proof kernel's comparison currency)
# ----------------------------------------------------------------------

#: Profile-space cap above which :func:`integer_utility_table` declines
#: to materialize (the Fraction oracle keeps working; this only bounds
#: the *optimization's* memory, never correctness).
MAX_TABLE_PROFILES = 1 << 20

#: Per-game cache of integerized utility tables.  Weakly keyed: a table
#: lives exactly as long as its game, and re-checking certificates
#: against the same game (the E6 workload, and any authority serving
#: repeat games) pays the Θ(players · profiles) clearing once.
_TABLE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def integer_table_and_scales(game):
    """Like :func:`integer_utility_table`, plus the per-player scales.

    Returns ``(table, scales)`` where ``table[profile][p] / scales[p]``
    is player ``p``'s exact payoff — the scales let integer fast paths
    reconstruct bit-identical Fractions at the boundary (the n-player
    verifier reports exact values, not just verdicts).  ``None`` when
    the game cannot be tabulated; cached per game alongside the table.
    """
    from repro.games.profiles import enumerate_profiles, profile_space_size

    try:
        cached = _TABLE_CACHE.get(game)
    except TypeError:  # unhashable/unweakrefable game: build uncached
        cached = None
    if cached is not None:
        return cached
    try:
        counts = game.action_counts
        players = game.num_players
        if profile_space_size(counts) > MAX_TABLE_PROFILES:
            return None
        # Games with a batch accessor (one lookup per profile —
        # StrategicGame and friends) clear much faster than a
        # per-player oracle walk; both paths fetch identical Fractions.
        all_payoffs = getattr(game, "payoffs", None)
        if all_payoffs is not None:
            payoffs = {
                profile: all_payoffs(profile)
                for profile in enumerate_profiles(counts)
            }
            if any(len(row) != players for row in payoffs.values()):
                return None
        else:
            payoffs = {
                profile: [game.payoff(player, profile) for player in range(players)]
                for profile in enumerate_profiles(counts)
            }
        scales = [
            lcm(*(row[player].denominator for row in payoffs.values()))
            for player in range(players)
        ]
        table = {
            profile: tuple(
                value.numerator * (scales[player] // value.denominator)
                for player, value in enumerate(row)
            )
            for profile, row in payoffs.items()
        }
        entry = (table, tuple(scales))
    except Exception:  # noqa: BLE001 - any non-tabular game keeps the oracle
        return None
    try:
        _TABLE_CACHE[game] = entry
    except TypeError:
        pass
    return entry


def integer_utility_table(game):
    """Every player's payoffs over the whole profile space, as ints.

    Returns ``{profile: (int, ...)}`` where entry ``p`` of a profile's
    tuple is player ``p``'s payoff scaled by that *player's* common
    denominator — an order-preserving image, so every same-player
    utility comparison a proof certificate makes becomes a machine-int
    comparison.  Cross-player entries are deliberately *not* comparable
    (each player has their own scale), exactly mirroring the proof
    language, which never compares utilities across players.

    Returns ``None`` when the game cannot be tabulated (oversized
    profile space, or an oracle that rejects some profile) — callers
    fall back to the exact Fraction oracle.  Tables are cached per game
    (weakly), so a game checked repeatedly is cleared once.
    """
    entry = integer_table_and_scales(game)
    return None if entry is None else entry[0]
