"""Rational linear algebra with pluggable numeric search backends.

The equilibrium provers and proof verifiers in this library work over
:class:`fractions.Fraction` so that "provable" means *exactly checkable*.
This package supplies the few primitives they need:

* :mod:`repro.linalg.exact` — Gaussian elimination over Fractions:
  solve, rank, nullspace and general/particular solutions of
  ``Ax = b`` (the reference semantics every faster kernel must match);
* :mod:`repro.linalg.int_exact` — the fraction-free exact kernel:
  integer Bareiss elimination after LCM clearing, bit-identical to
  :mod:`~repro.linalg.exact` but without per-step gcd normalization —
  the arithmetic all certification and proof checking runs on;
* :mod:`repro.linalg.lp` — a small exact simplex solver used for
  feasibility questions (e.g. under-determined support systems in the
  P1 verifier) — kept as the Fraction reference semantics;
* :mod:`repro.linalg.int_lp` — the fraction-free integer simplex:
  LCM integerization at the boundary, Bareiss-style exact-division
  pivoting inside, bit-identical results to :mod:`~repro.linalg.lp` —
  the LP kernel every hot path routes through;
* :mod:`repro.linalg.backend` — the two-phase "search fast, certify
  exact" seam: :class:`~repro.linalg.backend.ExactBackend` (the seed
  semantics), :class:`~repro.linalg.backend.FloatBackend` (float64
  search with tolerances, stdlib-only) and
  :class:`~repro.linalg.backend.BackendPolicy` (``exact`` /
  ``float+certify`` / ``auto``) that the solver stack and the core
  authority plumb through.
"""

from repro.linalg.backend import (
    AUTO_POLICY,
    BACKEND_MODES,
    EXACT_BACKEND,
    EXACT_POLICY,
    EXECUTOR_NAMES,
    EXECUTOR_SERIAL,
    EXECUTOR_SHARDED,
    FLOAT_BACKEND,
    FLOAT_CERTIFY_POLICY,
    INCONCLUSIVE,
    MODE_AUTO,
    MODE_EXACT,
    MODE_FLOAT_CERTIFY,
    MODE_NUMPY,
    NUMPY_BACKEND,
    NUMPY_POLICY,
    SHARDED_POLICY,
    BackendPolicy,
    ExactBackend,
    FloatBackend,
    NumericBackend,
    numpy_available,
    resolve_policy,
)
from repro.linalg.exact import (
    gaussian_elimination,
    identity_matrix,
    matrix_rank,
    nullspace,
    solve_linear_system,
    solve_square,
)
from repro.linalg.int_exact import (
    IntegerLattice,
    bareiss_elimination,
    integer_utility_table,
    integerize_matrix,
    integerize_vector,
)
from repro.linalg.int_lp import LPResult, solve_lp, find_feasible_point

__all__ = [
    "AUTO_POLICY",
    "BACKEND_MODES",
    "EXACT_BACKEND",
    "EXACT_POLICY",
    "EXECUTOR_NAMES",
    "EXECUTOR_SERIAL",
    "EXECUTOR_SHARDED",
    "FLOAT_BACKEND",
    "FLOAT_CERTIFY_POLICY",
    "INCONCLUSIVE",
    "MODE_AUTO",
    "MODE_EXACT",
    "MODE_FLOAT_CERTIFY",
    "MODE_NUMPY",
    "NUMPY_BACKEND",
    "NUMPY_POLICY",
    "SHARDED_POLICY",
    "BackendPolicy",
    "ExactBackend",
    "FloatBackend",
    "NumericBackend",
    "numpy_available",
    "resolve_policy",
    "gaussian_elimination",
    "identity_matrix",
    "matrix_rank",
    "nullspace",
    "solve_linear_system",
    "solve_square",
    "IntegerLattice",
    "bareiss_elimination",
    "integer_utility_table",
    "integerize_matrix",
    "integerize_vector",
    "LPResult",
    "solve_lp",
    "find_feasible_point",
]
