"""Exact rational linear algebra.

The equilibrium provers and proof verifiers in this library work over
:class:`fractions.Fraction` so that "provable" means *exactly checkable*.
This package supplies the few primitives they need:

* :mod:`repro.linalg.exact` — Gaussian elimination: solve, rank,
  inverse, nullspace and general/particular solutions of ``Ax = b``;
* :mod:`repro.linalg.lp` — a small exact simplex solver used for
  feasibility questions (e.g. under-determined support systems in the
  P1 verifier).
"""

from repro.linalg.exact import (
    gaussian_elimination,
    identity_matrix,
    matrix_rank,
    nullspace,
    solve_linear_system,
    solve_square,
)
from repro.linalg.lp import LPResult, solve_lp, find_feasible_point

__all__ = [
    "gaussian_elimination",
    "identity_matrix",
    "matrix_rank",
    "nullspace",
    "solve_linear_system",
    "solve_square",
    "LPResult",
    "solve_lp",
    "find_feasible_point",
]
