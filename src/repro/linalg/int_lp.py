"""Fraction-free exact LP: the integer two-phase simplex.

:mod:`repro.linalg.lp` — the seed's exact simplex — pivots directly on
:class:`~fractions.Fraction` tableaus, paying a gcd normalization inside
every add and multiply.  After PR 4 moved elimination and certification
onto the integer Bareiss kernel, that simplex was the last exact
decision procedure still running on Fractions: it decides the Lemma-1
LP-feasibility bound for degenerate support pairs (the P1 verifier's
``LP(n, m)`` fallback) and solves the correlated-equilibrium program.
This module removes the Fractions without touching a single decision:

1. **Integerize once.**  The constraint block ``[A | b]`` is cleared to
   integers with *one global* LCM scale.  Uniform scaling multiplies
   every phase-1 reduced cost and every ratio-test numerator/denominator
   pair by the same positive constant, so the reference simplex run on
   the scaled system takes the *identical* pivot path — per-row scaling
   would not have this property (it reweights the artificial penalties
   and perturbs degenerate ties).
2. **Integer pivoting inside.**  The tableau is maintained as an integer
   matrix over a single running denominator (the previous pivot), with
   Bareiss-style cross-multiplication updates and exact divisions —
   Edmonds' integer-pivoting scheme, the same arithmetic lrs-style exact
   LP codes use.  Entries are minors of the integerized input by
   construction: no per-step gcd, bounded coefficient growth, and every
   division is checked (:func:`repro.linalg.int_exact._exact_div`) so a
   hypothetical invariant violation is a loud error, never a silently
   wrong "exact" answer.
3. **The same anti-cycling pivot rule.**  Entering and leaving variables
   are chosen lexicographically by variable index (Bland's rule) exactly
   as the reference does — entering: first negative reduced cost;
   leaving: minimum ratio, ties broken by smallest basis index — which
   both guarantees finite termination on cycling instances (Beale's
   example and friends) and makes the pivot sequence *identical* to the
   Fraction reference.  Sign tests and ratio comparisons run on raw
   integers (cross-multiplication by positive denominators), so they
   decide exactly as the Fraction comparisons would.
4. **Fractions only at the boundary.**  :func:`solve_lp` and
   :func:`find_feasible_point` accept and return exactly what the
   reference accepts and returns — same :class:`LPResult` statuses, same
   vertex, same objective, bit for bit, on *every* input (the property
   tests in ``tests/test_int_lp.py`` pin this on random, degenerate,
   infeasible, unbounded and cycling LPs).

The Fraction implementation stays in :mod:`repro.linalg.lp` as the
reference semantics for the parity tests; every hot path routes here.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm  # repro: allow[R1] -- lcm is exact integer arithmetic; no float can leave it
from typing import Sequence

from repro.errors import LinearAlgebraError
from repro.fractions_util import fraction_matrix, fraction_vector
from repro.linalg import lp as _fraction_lp
from repro.linalg.int_exact import _exact_div

#: The result type is shared with the Fraction reference so callers (and
#: parity tests) compare results of one class, not two lookalikes.
LPResult = _fraction_lp.LPResult

_ZERO = Fraction(0)
_ONE = Fraction(1)


class _IntegerTableau:
    """The simplex tableau as integers over one running denominator.

    Invariant: ``rows[i][j] / den`` is the Fraction tableau the reference
    simplex would hold after the same pivots, with ``den > 0`` (``den``
    is the previous pivot value; pivots chosen by the ratio test are
    positive, and the rare negative pivot — driving an artificial out of
    a degenerate basis — is followed by a global negation that restores
    the sign without changing any represented value).  The objective row
    is carried at its own fixed positive multiple of the reference row
    (the cost denominators' LCM times ``den``), which leaves every sign
    test and update unchanged.
    """

    __slots__ = ("rows", "basis", "den")

    def __init__(self, rows: list[list[int]], basis: list[int]):
        self.rows = rows
        self.basis = basis
        self.den = 1

    # ------------------------------------------------------------------

    def reduced_costs(self, cost: Sequence[Fraction]) -> list[int]:
        """The objective row (reduced costs + negated objective), scaled.

        Returns ``κ · den`` times the reference's ``_reduced_costs`` row,
        where ``κ`` is the LCM of the cost denominators — a positive
        constant, so the entering-variable sign tests are identical.
        """
        kappa = lcm(*(f.denominator for f in cost)) if cost else 1
        int_cost = [f.numerator * (kappa // f.denominator) for f in cost]
        den = self.den
        row = [v * den for v in int_cost] + [0]
        width = len(row)
        for i, var in enumerate(self.basis):
            coeff = int_cost[var]
            if coeff:
                tab_row = self.rows[i]
                for j in range(width):
                    row[j] -= coeff * tab_row[j]
        return row

    def pivot(self, row_idx: int, col_idx: int, objective_row=None) -> None:
        """Integer pivot: cross-multiply, divide by the old denominator.

        The pivot row itself is left untouched (it is the new
        denominator's image of the normalized reference pivot row); every
        other row — and the objective row, when iterating — takes the
        fraction-free update ``(pivot·x - factor·y) / den``, exact by the
        minor structure of integer pivoting.
        """
        rows = self.rows
        den = self.den
        pivot_row = rows[row_idx]
        pivot = pivot_row[col_idx]
        for i, row in enumerate(rows):
            if i == row_idx:
                continue
            factor = row[col_idx]
            if factor:
                rows[i] = [
                    _exact_div(pivot * x - factor * y, den)
                    for x, y in zip(row, pivot_row)
                ]
            elif pivot != den:
                rows[i] = [_exact_div(pivot * x, den) for x in row]
        if objective_row is not None:
            factor = objective_row[col_idx]
            if factor:
                objective_row[:] = [
                    _exact_div(pivot * x - factor * y, den)
                    for x, y in zip(objective_row, pivot_row)
                ]
            elif pivot != den:
                objective_row[:] = [
                    _exact_div(pivot * x, den) for x in objective_row
                ]
        self.basis[row_idx] = col_idx
        if pivot < 0:
            # A driving-out pivot may be negative; renormalize so sign
            # tests keep reading straight off the integers.
            for i, row in enumerate(rows):
                rows[i] = [-x for x in row]
            if objective_row is not None:
                objective_row[:] = [-x for x in objective_row]
            self.den = -pivot
        else:
            self.den = pivot

    def iterate(self, objective_row: list[int], limit: int) -> str:
        """Pivot under Bland's rule until optimal or unbounded.

        Mirrors the reference ``_simplex_iterate`` decision for
        decision: entering is the first column below ``limit`` with a
        negative reduced cost; leaving is the minimum-ratio row with
        ties broken by the smaller basis index.  Ratios are compared by
        cross-multiplication — both divisors are positive — so every
        comparison decides exactly as the Fraction one.
        """
        rows = self.rows
        basis = self.basis
        while True:
            entering = next(
                (j for j in range(limit) if objective_row[j] < 0), None
            )
            if entering is None:
                return "optimal"
            leaving = None
            best_rhs = best_coef = None  # ratio = rhs / coef, coef > 0
            for i, row in enumerate(rows):
                coef = row[entering]
                if coef > 0:
                    rhs = row[-1]
                    if leaving is None:
                        better = True
                    else:
                        lhs = rhs * best_coef
                        rhs_cmp = best_rhs * coef
                        better = lhs < rhs_cmp or (
                            lhs == rhs_cmp and basis[i] < basis[leaving]
                        )
                    if better:
                        best_rhs, best_coef, leaving = rhs, coef, i
            if leaving is None:
                return "unbounded"
            self.pivot(leaving, entering, objective_row)


def solve_lp(c: Sequence, a: Sequence[Sequence], b: Sequence) -> LPResult:
    """Minimize ``c.x`` subject to ``A x = b``, ``x >= 0``, exactly.

    Bit-identical to :func:`repro.linalg.lp.solve_lp` on every input —
    same statuses, same vertex, same objective — computed fraction-free
    on the integer lattice.
    """
    a_mat = [list(row) for row in fraction_matrix(a)]
    b_vec = list(fraction_vector(b))
    c_vec = list(fraction_vector(c))
    nrows = len(a_mat)
    ncols = len(c_vec)
    if any(len(row) != ncols for row in a_mat):
        raise LinearAlgebraError("LP constraint matrix has ragged rows")
    if len(b_vec) != nrows:
        raise LinearAlgebraError("LP rhs length does not match constraints")

    for i in range(nrows):
        if b_vec[i] < 0:
            a_mat[i] = [-x for x in a_mat[i]]
            b_vec[i] = -b_vec[i]

    # One *global* integer clearing of [A | b] (see the module docstring:
    # uniform scaling preserves the reference pivot trajectory exactly;
    # per-row scaling would not).  Artificial columns stay at 1.
    scale = (
        lcm(
            *(v.denominator for row in a_mat for v in row),
            *(v.denominator for v in b_vec),
        )
        if (b_vec or any(a_mat))
        else 1
    )
    total = ncols + nrows
    rows = [
        [v.numerator * (scale // v.denominator) for v in a_mat[i]]
        + [1 if j == i else 0 for j in range(nrows)]
        + [b_vec[i].numerator * (scale // b_vec[i].denominator)]
        for i in range(nrows)
    ]
    tableau = _IntegerTableau(rows, list(range(ncols, ncols + nrows)))

    # --- Phase 1: minimize the sum of artificial variables. ---
    phase1_cost = [_ZERO] * ncols + [_ONE] * nrows
    objective_row = tableau.reduced_costs(phase1_cost)
    tableau.iterate(objective_row, total)
    if objective_row[-1] != 0:  # phase-1 value is -obj[-1] / (positive scale)
        return LPResult(status="infeasible", x=(), objective=None)

    # Drive any artificial variables out of the basis (degenerate case).
    for row_idx, var in enumerate(tableau.basis):
        if var >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau.rows[row_idx][j] != 0),
                None,
            )
            if pivot_col is not None:
                tableau.pivot(row_idx, pivot_col)
    # Rows still basic in an artificial variable are redundant; rhs is 0.

    # --- Phase 2: original objective, artificial columns frozen. ---
    phase2_cost = c_vec + [_ZERO] * nrows
    objective_row = tableau.reduced_costs(phase2_cost)
    status = tableau.iterate(objective_row, ncols)
    if status == "unbounded":
        return LPResult(status="unbounded", x=(), objective=None)

    x = [_ZERO] * ncols
    den = tableau.den
    for row_idx, var in enumerate(tableau.basis):
        if var < ncols:
            x[var] = Fraction(tableau.rows[row_idx][-1], den)
    objective = sum((c_vec[j] * x[j] for j in range(ncols)), start=_ZERO)
    return LPResult(status="optimal", x=tuple(x), objective=objective)


def find_feasible_point(
    a_eq: Sequence[Sequence],
    b_eq: Sequence,
    upper_bounds: Sequence | None = None,
) -> tuple[Fraction, ...] | None:
    """Find ``x >= 0`` with ``A x = b`` and optional ``x <= u``, or None.

    Bit-identical to :func:`repro.linalg.lp.find_feasible_point`: the
    same slack encoding for upper bounds, the same zero-cost phase-2
    no-op, the same vertex out.
    """
    a = [list(row) for row in fraction_matrix(a_eq)]
    b = list(fraction_vector(b_eq))
    ncols = len(a[0]) if a else 0
    if upper_bounds is not None:
        ubs = list(fraction_vector(upper_bounds))
        if len(ubs) != ncols:
            raise LinearAlgebraError("upper bound length does not match variables")
        # x_j + s_j = u_j adds one slack per bounded variable.
        nslack = len(ubs)
        for row in a:
            row.extend([_ZERO] * nslack)
        for j, u in enumerate(ubs):
            bound_row = [_ZERO] * (ncols + nslack)
            bound_row[j] = _ONE
            bound_row[ncols + j] = _ONE
            a.append(bound_row)
            b.append(u)
        total_cols = ncols + nslack
    else:
        total_cols = ncols

    result = solve_lp([_ZERO] * total_cols, a, b)
    if not result.is_optimal:
        return None
    return result.x[:ncols]
