"""The numpy-vectorized search backend: dense tableaus, batched screens.

This module is the vectorized float arm of the two-phase pipeline.  It
implements the same numeric contract as the stdlib
:class:`~repro.linalg.backend.FloatBackend` — answers are *suggestions*,
anything borderline is inconclusive, and certification downstream is
always exact — but stages the work for hardware:

* :meth:`NumpyBackend.solve_square` runs float64 Gaussian elimination
  with partial pivoting as whole-matrix numpy operations, guarded by a
  condition-number check (near-singular systems are inconclusive, never
  answers);
* :meth:`NumpyBackend.find_feasible_point` runs a dense-tableau phase-1
  simplex whose pivots are rank-1 ndarray updates;
* :meth:`NumpyBackend.screen_feasible` is the batched screening entry
  point the support-enumeration engine drives: it stacks many small
  Lemma-1 feasibility systems by shape and pivots *all systems of a
  shape group simultaneously* — one entering/leaving/ratio computation
  per iteration for the whole stack, which is where the bulk-rejection
  speedup over one-at-a-time screening comes from.

Tolerance discipline mirrors the stdlib backend exactly: a phase-1
optimum above ``feastol`` is confidently infeasible; one inside
``(pivot_tol, feastol]`` is inconclusive (:data:`INCONCLUSIVE` in batch
answers, :class:`BackendError` in scalar ones); hitting the iteration
cap is likewise inconclusive.  No result of this module is ever returned
to a caller of the solver layer without exact reconstruction and the
Lemma-1 gate.

This module imports numpy unconditionally; :mod:`repro.linalg.backend`
gates the import so the rest of the library keeps working (and the
stdlib float path keeps screening) when numpy is absent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BackendError, LinearAlgebraError
from repro.linalg.backend import (
    DEFAULT_SUPPORT_TOL,
    INCONCLUSIVE,
    MODE_NUMPY,
    FloatBackend,
)

# Status codes for systems moving through the batched phase-1 loop.
_ACTIVE = 0
_OPTIMAL = 1
_UNDECIDED = 2  # unbounded ray / iteration cap: inconclusive


class NumpyBackend(FloatBackend):
    """Vectorized float64 search with batched feasibility screening.

    Subclasses :class:`FloatBackend` so the tolerance semantics (and the
    basis-returning scalar simplex used for warm starts) are shared; the
    square solver and the screening paths are overridden with ndarray
    implementations.  ``max_condition`` bounds the condition number a
    square solve will vouch for — anything worse is inconclusive.
    """

    name = "numpy"
    mode = MODE_NUMPY
    exact = False
    batched_screen = True

    def __init__(self, feastol: float = 1e-7, pivot_tol: float = 1e-9,
                 max_iterations: int | None = None,
                 support_tol: float = DEFAULT_SUPPORT_TOL,
                 max_condition: float = 1e12):
        super().__init__(feastol=feastol, pivot_tol=pivot_tol,
                         max_iterations=max_iterations,
                         support_tol=support_tol)
        if max_condition <= 0:
            raise LinearAlgebraError("max_condition must be positive")
        self.max_condition = float(max_condition)

    # ------------------------------------------------------------------
    # Square solves
    # ------------------------------------------------------------------

    def solve_square(self, matrix, rhs):
        try:
            a = np.asarray(
                [[float(x) for x in row] for row in matrix], dtype=np.float64
            )
        except ValueError:
            raise LinearAlgebraError("solve_square requires a square matrix") from None
        b = np.asarray([float(x) for x in rhs], dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise LinearAlgebraError("solve_square requires a square matrix")
        if b.shape != (a.shape[0],):
            raise LinearAlgebraError("rhs length does not match matrix")
        if a.size == 0:
            return []
        try:
            x = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            raise BackendError("numpy solve: singular matrix") from None
        if not np.all(np.isfinite(x)):
            raise BackendError("numpy solve produced non-finite values")
        # Near-singular systems solve without error but cannot be
        # vouched for; the condition estimate is the analogue of the
        # stdlib backend's pivot-below-tolerance test.
        condition = np.linalg.cond(a)
        if not np.isfinite(condition) or condition > self.max_condition:
            raise BackendError("numpy solve: matrix condition beyond tolerance")
        return x.tolist()

    # ------------------------------------------------------------------
    # Scalar feasibility (a batch of one through the dense tableau)
    # ------------------------------------------------------------------

    def find_feasible_point(self, a_eq, b_eq, upper_bounds=None):
        a = [[float(x) for x in row] for row in a_eq]
        b = [float(x) for x in b_eq]
        ncols = len(a[0]) if a else 0
        if any(len(row) != ncols for row in a):
            raise LinearAlgebraError("LP constraint matrix has ragged rows")
        if len(b) != len(a):
            raise LinearAlgebraError("LP rhs length does not match constraints")
        if upper_bounds is not None:
            ubs = [float(u) for u in upper_bounds]
            if len(ubs) != ncols:
                raise LinearAlgebraError("upper bound length does not match variables")
            nslack = len(ubs)
            for row in a:
                row.extend([0.0] * nslack)
            for j, u in enumerate(ubs):
                bound_row = [0.0] * (ncols + nslack)
                bound_row[j] = 1.0
                bound_row[ncols + j] = 1.0
                a.append(bound_row)
                b.append(u)
        outcome = self._phase1_batch(
            np.asarray([a], dtype=np.float64) if a else np.zeros((1, 0, ncols)),
            np.asarray([b], dtype=np.float64).reshape(1, -1),
        )[0]
        if outcome is INCONCLUSIVE:
            raise BackendError("numpy phase-1 inconclusive")
        if outcome is None:
            return None
        return list(outcome[:ncols])

    # ------------------------------------------------------------------
    # Batched screening
    # ------------------------------------------------------------------

    def screen_feasible(self, systems: Sequence[tuple]) -> list:
        """Decide many ``Ax = b, x >= 0`` systems, stacked by shape.

        Same-shaped systems (the common case: Lemma-1 sides of support
        pairs with equal cardinalities) are screened as one ndarray
        stack; distinct shapes form separate stacks.  Output order
        matches input order regardless of grouping, so callers can rely
        on positional correspondence.
        """
        results: list = [None] * len(systems)
        groups: dict[tuple[int, int], list[int]] = {}
        for idx, (rows, rhs) in enumerate(systems):
            nrows = len(rows)
            ncols = len(rows[0]) if rows else 0
            if any(len(row) != ncols for row in rows) or len(rhs) != nrows:
                raise LinearAlgebraError("screen_feasible: malformed system")
            groups.setdefault((nrows, ncols), []).append(idx)
        for (nrows, ncols), indices in groups.items():
            a = np.empty((len(indices), nrows, ncols), dtype=np.float64)
            b = np.empty((len(indices), nrows), dtype=np.float64)
            for pos, idx in enumerate(indices):
                rows, rhs = systems[idx]
                a[pos] = rows
                b[pos] = rhs
            outcomes = self._phase1_batch(a, b)
            for pos, idx in enumerate(indices):
                outcome = outcomes[pos]
                if outcome is None or outcome is INCONCLUSIVE:
                    results[idx] = outcome
                else:
                    results[idx] = tuple(outcome[:ncols])
        return results

    def _phase1_batch(self, a: np.ndarray, b: np.ndarray) -> list:
        """Batched phase-1 simplex over a (batch, rows, cols) stack.

        Returns one entry per system: the full variable vector
        (structural + artificial) on feasibility, ``None`` on confident
        infeasibility, :data:`INCONCLUSIVE` otherwise.  All systems of
        the stack pivot in lockstep; finished systems are masked out.
        The Dantzig entering rule and the smallest-basis-label ratio
        tie-break make every trajectory deterministic, so the batch
        decomposition (and hence any sharding of it) cannot change
        answers.
        """
        batch, nrows, ncols = a.shape
        if batch == 0:
            return []
        if nrows == 0:
            return [np.zeros(ncols)] * batch

        a = a.copy()
        b = b.copy()
        # Row equilibration, exactly as the stdlib backend: relative
        # tolerances via per-row scaling, then flip rows negative on b.
        scale = np.maximum(
            np.abs(a).max(axis=2) if ncols else 0.0, np.abs(b)
        )
        scale[scale == 0.0] = 1.0
        a /= scale[:, :, None]
        b /= scale
        flip = b < 0.0
        a[flip] = -a[flip]
        b[flip] = -b[flip]

        total = ncols + nrows
        tableau = np.concatenate(
            [
                a,
                np.broadcast_to(np.eye(nrows), (batch, nrows, nrows)).copy(),
                b[:, :, None],
            ],
            axis=2,
        )
        basis = np.tile(np.arange(ncols, ncols + nrows), (batch, 1))
        # Phase-1 objective: minimize the artificial sum.  Reduced-cost
        # row = artificial costs minus the sum of all constraint rows.
        objective = np.zeros((batch, total + 1))
        objective[:, ncols:ncols + nrows] = 1.0
        objective -= tableau.sum(axis=1)

        # The stack pivots in lockstep but systems finish at different
        # times; finished systems are *compacted out* of the working
        # arrays (not masked), so per-iteration cost tracks the number
        # of still-undecided systems, not the original batch size.
        results: list = [INCONCLUSIVE] * batch
        origin = np.arange(batch)

        def finalize(keep: np.ndarray) -> None:
            """Record answers for optimal systems not in ``keep``."""
            nonlocal tableau, objective, basis, origin
            done = ~keep
            if done.any():
                done_obj = objective[done]
                done_tab = tableau[done]
                done_basis = basis[done]
                infeasibility = -done_obj[:, -1]
                for pos, index in enumerate(origin[done]):
                    if infeasibility[pos] > self.feastol:
                        results[index] = None  # confidently infeasible
                    elif infeasibility[pos] > self.pivot_tol:
                        results[index] = INCONCLUSIVE  # too close to call
                    else:
                        x = np.zeros(total)
                        x[done_basis[pos]] = done_tab[pos, :, -1]
                        results[index] = x
            tableau = tableau[keep]
            objective = objective[keep]
            basis = basis[keep]
            origin = origin[keep]

        def drop(keep: np.ndarray) -> None:
            """Discard undecidable systems not in ``keep`` (stay INCONCLUSIVE)."""
            nonlocal tableau, objective, basis, origin
            tableau = tableau[keep]
            objective = objective[keep]
            basis = basis[keep]
            origin = origin[keep]

        cap = self.max_iterations or (64 + 16 * (nrows + ncols))
        for _iteration in range(cap):
            if origin.size == 0:
                break
            reduced = objective[:, :total]
            entering = reduced.argmin(axis=1)
            alive = np.arange(origin.size)
            best = reduced[alive, entering]
            still = best < -self.pivot_tol
            if not still.all():
                finalize(still)
                if origin.size == 0:
                    break
                entering = entering[still]
                alive = np.arange(origin.size)

            column = np.take_along_axis(
                tableau, entering[:, None, None], axis=2
            )[:, :, 0]
            positive = column > self.pivot_tol
            bounded = positive.any(axis=1)
            if not bounded.all():
                drop(bounded)  # unbounded ray: numerical trouble, no answer
                if origin.size == 0:
                    continue
                entering = entering[bounded]
                column = column[bounded]
                positive = positive[bounded]
                alive = np.arange(origin.size)

            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(
                    positive, tableau[:, :, -1] / column, np.inf
                )
            best_ratio = ratios.min(axis=1)
            # Ties within pivot_tol break on the smallest basis label —
            # the deterministic anti-stalling rule of the stdlib backend.
            tied = positive & (ratios <= best_ratio[:, None] + self.pivot_tol)
            labels = np.where(tied, basis, total + 1)
            leaving = labels.argmin(axis=1)

            pivot_coef = column[alive, leaving]
            pivot_rows = tableau[alive, leaving] / pivot_coef[:, None]
            tableau -= column[:, :, None] * pivot_rows[:, None, :]
            tableau[alive, leaving] = pivot_rows
            obj_coef = objective[alive, entering]
            objective -= obj_coef[:, None] * pivot_rows
            basis[alive, leaving] = entering
        # Whatever is still pivoting at the cap stays INCONCLUSIVE.
        return results
