"""Exact Gaussian elimination over the rationals.

All routines take matrices as sequences of sequences of numbers (anything
:func:`repro.fractions_util.to_fraction` accepts) and return Fractions.
They are written for the small dense systems that equilibrium
verification produces (tens of unknowns), favouring clarity and exactness
over asymptotic tricks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import LinearAlgebraError
from repro.fractions_util import fraction_matrix, fraction_vector

Matrix = tuple[tuple[Fraction, ...], ...]
Vector = tuple[Fraction, ...]


def identity_matrix(n: int) -> Matrix:
    """The n-by-n identity matrix over Fractions."""
    one, zero = Fraction(1), Fraction(0)
    return tuple(
        tuple(one if i == j else zero for j in range(n)) for i in range(n)
    )


def gaussian_elimination(matrix: Sequence[Sequence], rhs: Sequence[Sequence] | None = None):
    """Reduce ``matrix`` (with optional right-hand-side block) to RREF.

    Returns ``(rref, rhs_rref, pivot_columns)`` where ``pivot_columns`` is
    the tuple of column indices that hold a leading 1.  ``rhs`` may be a
    matrix block (list of rows matching ``matrix``) carried through the
    same row operations; pass ``None`` to omit it.
    """
    a = [list(row) for row in fraction_matrix(matrix)]
    nrows = len(a)
    ncols = len(a[0]) if a else 0
    if rhs is not None:
        b = [list(row) for row in fraction_matrix(rhs)]
        if len(b) != nrows:
            raise LinearAlgebraError("rhs row count does not match matrix")
    else:
        b = [[] for _ in range(nrows)]

    pivot_cols: list[int] = []
    row = 0
    for col in range(ncols):
        if row >= nrows:
            break
        # Find a pivot in this column at or below `row`.
        pivot = next((r for r in range(row, nrows) if a[r][col] != 0), None)
        if pivot is None:
            continue
        a[row], a[pivot] = a[pivot], a[row]
        b[row], b[pivot] = b[pivot], b[row]
        # Normalize the pivot row.
        inv = Fraction(1) / a[row][col]
        a[row] = [x * inv for x in a[row]]
        b[row] = [x * inv for x in b[row]]
        # Eliminate the column everywhere else.
        for r in range(nrows):
            if r != row and a[r][col] != 0:
                factor = a[r][col]
                a[r] = [x - factor * y for x, y in zip(a[r], a[row])]
                b[r] = [x - factor * y for x, y in zip(b[r], b[row])]
        pivot_cols.append(col)
        row += 1

    rref = tuple(tuple(r) for r in a)
    rhs_rref = tuple(tuple(r) for r in b)
    return rref, rhs_rref, tuple(pivot_cols)


def matrix_rank(matrix: Sequence[Sequence]) -> int:
    """Exact rank of ``matrix``."""
    if not matrix:
        return 0
    __, __, pivots = gaussian_elimination(matrix)
    return len(pivots)


def solve_square(matrix: Sequence[Sequence], rhs: Sequence) -> Vector:
    """Solve a square nonsingular system ``Ax = b`` exactly.

    Raises :class:`LinearAlgebraError` if the matrix is singular.
    """
    a = fraction_matrix(matrix)
    b = fraction_vector(rhs)
    n = len(a)
    if n == 0:
        return ()
    if any(len(row) != n for row in a):
        raise LinearAlgebraError("solve_square requires a square matrix")
    if len(b) != n:
        raise LinearAlgebraError("rhs length does not match matrix")
    rref, rhs_rref, pivots = gaussian_elimination(a, [[x] for x in b])
    if len(pivots) != n:
        raise LinearAlgebraError("matrix is singular")
    return tuple(rhs_rref[i][0] for i in range(n))


def solve_linear_system(matrix: Sequence[Sequence], rhs: Sequence):
    """Solve a general (possibly non-square) system ``Ax = b`` exactly.

    Returns ``(particular, basis)`` where ``particular`` is one solution
    and ``basis`` is a tuple of nullspace vectors spanning the solution
    set (empty when the solution is unique).  Raises
    :class:`LinearAlgebraError` if the system is inconsistent.
    """
    a = fraction_matrix(matrix)
    b = fraction_vector(rhs)
    nrows = len(a)
    if len(b) != nrows:
        raise LinearAlgebraError("rhs length does not match matrix")
    ncols = len(a[0]) if a else 0
    rref, rhs_rref, pivots = gaussian_elimination(a, [[x] for x in b])
    # Inconsistency: a zero row of the matrix with nonzero rhs.
    for i in range(nrows):
        if all(x == 0 for x in rref[i]) and rhs_rref[i][0] != 0:
            raise LinearAlgebraError("linear system is inconsistent")
    # Row row_idx's pivot variable is column `col`; free variables stay 0.
    particular = [Fraction(0)] * ncols
    for row_idx, col in enumerate(pivots):
        particular[col] = rhs_rref[row_idx][0]
    basis = _nullspace_from_rref(rref, pivots, ncols)
    return tuple(particular), basis


def nullspace(matrix: Sequence[Sequence]) -> tuple[Vector, ...]:
    """Exact basis of the nullspace of ``matrix``."""
    a = fraction_matrix(matrix)
    if not a:
        return ()
    ncols = len(a[0])
    rref, __, pivots = gaussian_elimination(a)
    return _nullspace_from_rref(rref, pivots, ncols)


def _nullspace_from_rref(rref: Matrix, pivots: tuple[int, ...], ncols: int) -> tuple[Vector, ...]:
    """Build nullspace basis vectors from a matrix in RREF."""
    pivot_set = set(pivots)
    free_cols = [c for c in range(ncols) if c not in pivot_set]
    basis = []
    for free in free_cols:
        vec = [Fraction(0)] * ncols
        vec[free] = Fraction(1)
        for row_idx, col in enumerate(pivots):
            vec[col] = -rref[row_idx][free]
        basis.append(tuple(vec))
    return tuple(basis)
