"""A small exact simplex solver over the rationals.

Lemma 1 of the paper bounds the P1 verifier's running time by
``LP(n, m)`` — the cost of a linear-program solve.  The verifier itself
only needs a linear *system* in the generic case, but when the prover's
supports are of unequal size the system is under-determined and the
verifier must decide *feasibility* of the equilibrium conditions
(probabilities in [0, 1] summing to one).  This module supplies that
decision procedure, exactly.

The implementation is the textbook two-phase simplex on the standard form

    minimize    c . x
    subject to  A x = b,   x >= 0

with Bland's rule for anti-cycling.  It is written for the small systems
verification produces (tens of variables), not for scale.

This module is the **reference semantics**: every hot path now routes
through the fraction-free integer simplex in
:mod:`repro.linalg.int_lp`, which is bit-identical to this solver on
every input (statuses, vertex, objective) — a parity the property tests
in ``tests/test_int_lp.py`` pin on random, degenerate, infeasible,
unbounded and cycling LPs.  Keep the two in lockstep: any behavioral
change here must be mirrored there.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import LinearAlgebraError
from repro.fractions_util import fraction_matrix, fraction_vector

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class LPResult:
    """Outcome of an exact LP solve.

    Attributes:
        status: one of ``"optimal"``, ``"infeasible"``, ``"unbounded"``.
        x: the optimal solution (empty tuple unless status is optimal).
        objective: the optimal objective value (None unless optimal).
    """

    status: str
    x: tuple[Fraction, ...]
    objective: Fraction | None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_lp(c: Sequence, a: Sequence[Sequence], b: Sequence) -> LPResult:
    """Minimize ``c.x`` subject to ``A x = b``, ``x >= 0``, exactly.

    Rows with negative right-hand side are negated first so phase 1 can
    start from the all-artificial basis.
    """
    a_mat = [list(row) for row in fraction_matrix(a)]
    b_vec = list(fraction_vector(b))
    c_vec = list(fraction_vector(c))
    nrows = len(a_mat)
    ncols = len(c_vec)
    if any(len(row) != ncols for row in a_mat):
        raise LinearAlgebraError("LP constraint matrix has ragged rows")
    if len(b_vec) != nrows:
        raise LinearAlgebraError("LP rhs length does not match constraints")

    for i in range(nrows):
        if b_vec[i] < 0:
            a_mat[i] = [-x for x in a_mat[i]]
            b_vec[i] = -b_vec[i]

    # --- Phase 1: minimize the sum of artificial variables. ---
    # Tableau columns: [original variables | artificials], rows: constraints.
    total = ncols + nrows
    tableau = [a_mat[i] + [_ONE if j == i else _ZERO for j in range(nrows)] + [b_vec[i]]
               for i in range(nrows)]
    basis = [ncols + i for i in range(nrows)]
    phase1_cost = [_ZERO] * ncols + [_ONE] * nrows

    objective_row = _reduced_costs(tableau, basis, phase1_cost, total)
    _simplex_iterate(tableau, basis, objective_row, total)
    phase1_value = -objective_row[-1]
    if phase1_value != 0:
        return LPResult(status="infeasible", x=(), objective=None)

    # Drive any artificial variables out of the basis (degenerate case).
    for row_idx, var in enumerate(basis):
        if var >= ncols:
            pivot_col = next(
                (j for j in range(ncols) if tableau[row_idx][j] != 0), None
            )
            if pivot_col is not None:
                _pivot(tableau, basis, row_idx, pivot_col, total)
    # Rows still basic in an artificial variable are redundant; their rhs is 0.

    # --- Phase 2: original objective, artificial columns frozen at zero. ---
    phase2_cost = c_vec + [_ZERO] * nrows
    objective_row = _reduced_costs(tableau, basis, phase2_cost, total)
    status = _simplex_iterate(tableau, basis, objective_row, total, forbidden_from=ncols)
    if status == "unbounded":
        return LPResult(status="unbounded", x=(), objective=None)

    x = [_ZERO] * ncols
    for row_idx, var in enumerate(basis):
        if var < ncols:
            x[var] = tableau[row_idx][-1]
    objective = sum((c_vec[j] * x[j] for j in range(ncols)), start=_ZERO)
    return LPResult(status="optimal", x=tuple(x), objective=objective)


def find_feasible_point(
    a_eq: Sequence[Sequence],
    b_eq: Sequence,
    upper_bounds: Sequence | None = None,
) -> tuple[Fraction, ...] | None:
    """Find ``x >= 0`` with ``A x = b`` and optional ``x <= u``, or None.

    Upper bounds are encoded with slack variables; the returned tuple has
    the dimension of the original ``x`` only.
    """
    a = [list(row) for row in fraction_matrix(a_eq)]
    b = list(fraction_vector(b_eq))
    ncols = len(a[0]) if a else 0
    if upper_bounds is not None:
        ubs = list(fraction_vector(upper_bounds))
        if len(ubs) != ncols:
            raise LinearAlgebraError("upper bound length does not match variables")
        # x_j + s_j = u_j adds one slack per bounded variable.
        nslack = len(ubs)
        for row in a:
            row.extend([_ZERO] * nslack)
        for j, u in enumerate(ubs):
            bound_row = [_ZERO] * (ncols + nslack)
            bound_row[j] = _ONE
            bound_row[ncols + j] = _ONE
            a.append(bound_row)
            b.append(u)
        total_cols = ncols + nslack
    else:
        total_cols = ncols

    result = solve_lp([_ZERO] * total_cols, a, b)
    if not result.is_optimal:
        return None
    return result.x[:ncols]


def _reduced_costs(tableau, basis, cost, total):
    """Compute the objective row (reduced costs and negated objective)."""
    row = list(cost) + [_ZERO]
    for row_idx, var in enumerate(basis):
        coeff = row[var]
        if coeff != 0:
            for j in range(total + 1):
                row[j] -= coeff * tableau[row_idx][j]
    return row


def _simplex_iterate(tableau, basis, objective_row, total, forbidden_from=None):
    """Run simplex pivots with Bland's rule until optimal or unbounded."""
    limit = total if forbidden_from is None else forbidden_from
    while True:
        entering = next(
            (j for j in range(limit) if objective_row[j] < 0), None
        )
        if entering is None:
            return "optimal"
        # Ratio test, Bland tie-break on the leaving variable index.
        best_ratio = None
        leaving_row = None
        for i in range(len(tableau)):
            coef = tableau[i][entering]
            if coef > 0:
                ratio = tableau[i][-1] / coef
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[i] < basis[leaving_row])
                ):
                    best_ratio = ratio
                    leaving_row = i
        if leaving_row is None:
            return "unbounded"
        _pivot(tableau, basis, leaving_row, entering, total)
        coeff = objective_row[entering]
        if coeff != 0:
            for j in range(total + 1):
                objective_row[j] -= coeff * tableau[leaving_row][j]


def _pivot(tableau, basis, row_idx, col_idx, total):
    """Pivot the tableau so variable ``col_idx`` becomes basic in ``row_idx``."""
    inv = _ONE / tableau[row_idx][col_idx]
    tableau[row_idx] = [x * inv for x in tableau[row_idx]]
    for i in range(len(tableau)):
        if i != row_idx and tableau[i][col_idx] != 0:
            factor = tableau[i][col_idx]
            tableau[i] = [
                x - factor * y for x, y in zip(tableau[i], tableau[row_idx])
            ]
    basis[row_idx] = col_idx
