"""Pluggable numeric backends: search fast, certify exact.

The paper's central asymmetry — *finding* an equilibrium is PPAD-hard
while *verifying* one is cheap and must be exact — maps onto a two-phase
solver pipeline:

1. **Search** runs on a :class:`NumericBackend`.  The
   :class:`ExactBackend` is the seed behaviour (Fraction Gaussian
   elimination and simplex, authoritative by construction).  The
   :class:`FloatBackend` runs the same algorithms in float64 with pivot
   tolerances — orders of magnitude faster because rational coefficient
   growth is the dominant cost of exact pivoting.
2. **Certification** is always exact.  Every candidate a float search
   produces is reconstructed as Fractions (support-restricted exact
   re-solve) and checked against the exact Lemma-1 conditions before it
   is returned; candidates that fail are recomputed on the exact path.
   No approximate value ever escapes the solver layer.

:class:`BackendPolicy` names the three modes callers can request —
``"exact"``, ``"float+certify"`` and ``"auto"`` — and is what the core
layer plumbs through advice packages and the audit log.

Float routines here are stdlib-only (plain lists of floats, no numpy).
A float backend signals an *inconclusive* solve by raising
:class:`~repro.errors.BackendError`; pipeline callers treat that exactly
like a certification failure and fall back to the exact path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import BackendError, LinearAlgebraError
from repro.linalg import exact as _exact
from repro.linalg import lp as _lp

#: The three backend modes the core layer can request per advice package.
MODE_EXACT = "exact"
MODE_FLOAT_CERTIFY = "float+certify"
MODE_AUTO = "auto"
BACKEND_MODES = (MODE_EXACT, MODE_FLOAT_CERTIFY, MODE_AUTO)


class NumericBackend:
    """The solver-facing arithmetic seam.

    A backend answers the two numeric questions the equilibrium searches
    ask: "solve this square system" and "find a nonnegative feasible
    point of ``Ax = b``".  Exact backends answer authoritatively; float
    backends answer quickly and may raise :class:`BackendError` when the
    numerics are inconclusive.

    The current pipeline drives search through
    :meth:`find_feasible_point` only; :meth:`solve_square` completes the
    seam for the follow-on backends the ROADMAP names (numpy-vectorized
    elimination, sharded screens) whose reconstruction pre-checks run on
    square indifference systems.
    """

    #: Human-readable backend name, recorded in audit logs and benches.
    name: str = "abstract"
    #: True iff results need no downstream certification.
    exact: bool = True

    def solve_square(self, matrix: Sequence[Sequence], rhs: Sequence):
        raise NotImplementedError

    def find_feasible_point(
        self, a_eq: Sequence[Sequence], b_eq: Sequence,
        upper_bounds: Sequence | None = None,
    ):
        raise NotImplementedError


class ExactBackend(NumericBackend):
    """The seed semantics: Fraction elimination and simplex, unchanged."""

    name = "exact"
    exact = True

    def solve_square(self, matrix, rhs):
        return _exact.solve_square(matrix, rhs)

    def find_feasible_point(self, a_eq, b_eq, upper_bounds=None):
        return _lp.find_feasible_point(a_eq, b_eq, upper_bounds=upper_bounds)


class FloatBackend(NumericBackend):
    """float64 elimination and two-phase simplex with pivot tolerances.

    ``feastol`` separates "confidently infeasible" from "inconclusive":
    a phase-1 optimum above ``feastol`` rejects the system, one within
    ``(pivot_tol, feastol]`` raises :class:`BackendError` so the caller
    re-decides exactly.  ``max_iterations`` caps simplex pivoting (the
    float path uses Dantzig's rule, which is fast but not anti-cycling);
    hitting the cap is likewise inconclusive, never an answer.

    ``support_tol`` is the threshold below which a probability in a
    float solution is read as "off the support" when solvers extract
    candidate supports for exact reconstruction; it lives here so all
    phases of a pipeline run share one set of tolerances.
    """

    name = "float64"
    exact = False

    def __init__(self, feastol: float = 1e-7, pivot_tol: float = 1e-9,
                 max_iterations: int | None = None,
                 support_tol: float = 1e-7):
        if feastol <= 0 or pivot_tol <= 0 or support_tol <= 0:
            raise LinearAlgebraError("tolerances must be positive")
        self.feastol = float(feastol)
        self.pivot_tol = float(pivot_tol)
        self.support_tol = float(support_tol)
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    # Square solves
    # ------------------------------------------------------------------

    def solve_square(self, matrix, rhs):
        a = [[float(x) for x in row] for row in matrix]
        b = [float(x) for x in rhs]
        n = len(a)
        if any(len(row) != n for row in a):
            raise LinearAlgebraError("solve_square requires a square matrix")
        if len(b) != n:
            raise LinearAlgebraError("rhs length does not match matrix")
        scale = max((abs(x) for row in a for x in row), default=1.0) or 1.0
        for col in range(n):
            pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
            if abs(a[pivot][col]) <= self.pivot_tol * scale:
                raise BackendError("float pivot below tolerance (near-singular)")
            a[col], a[pivot] = a[pivot], a[col]
            b[col], b[pivot] = b[pivot], b[col]
            inv = 1.0 / a[col][col]
            for r in range(n):
                if r != col and a[r][col] != 0.0:
                    factor = a[r][col] * inv
                    arow, prow = a[r], a[col]
                    for j in range(col, n):
                        arow[j] -= factor * prow[j]
                    b[r] -= factor * b[col]
        return [b[i] / a[i][i] for i in range(n)]

    # ------------------------------------------------------------------
    # Feasibility (two-phase simplex over floats)
    # ------------------------------------------------------------------

    def find_feasible_point(self, a_eq, b_eq, upper_bounds=None):
        a = [[float(x) for x in row] for row in a_eq]
        b = [float(x) for x in b_eq]
        ncols = len(a[0]) if a else 0
        if upper_bounds is not None:
            ubs = [float(u) for u in upper_bounds]
            if len(ubs) != ncols:
                raise LinearAlgebraError("upper bound length does not match variables")
            nslack = len(ubs)
            for row in a:
                row.extend([0.0] * nslack)
            for j, u in enumerate(ubs):
                bound_row = [0.0] * (ncols + nslack)
                bound_row[j] = 1.0
                bound_row[ncols + j] = 1.0
                a.append(bound_row)
                b.append(u)
        point = self._phase1(a, b)
        if point is None:
            return None
        return point[:ncols]

    def _phase1(self, a, b) -> list[float] | None:
        """Feasible point of ``Ax = b, x >= 0`` or None (raises if unsure)."""
        nrows = len(a)
        ncols = len(a[0]) if a else 0
        if any(len(row) != ncols for row in a):
            raise LinearAlgebraError("LP constraint matrix has ragged rows")
        if len(b) != nrows:
            raise LinearAlgebraError("LP rhs length does not match constraints")
        a = [row[:] for row in a]
        b = b[:]
        # Row equilibration: divide each constraint by its largest
        # coefficient so the absolute tolerances below act relatively.
        # Feasibility of {Ax = b, x >= 0} is unchanged, but a system with
        # payoffs in the billions no longer swamps a 1e-7 feastol.
        for i in range(nrows):
            scale = max(max(abs(x) for x in a[i]), abs(b[i])) if a[i] else abs(b[i])
            if scale > 0.0:
                inv = 1.0 / scale
                a[i] = [x * inv for x in a[i]]
                b[i] *= inv
        for i in range(nrows):
            if b[i] < 0.0:
                a[i] = [-x for x in a[i]]
                b[i] = -b[i]
        total = ncols + nrows
        tableau = [
            a[i] + [1.0 if j == i else 0.0 for j in range(nrows)] + [b[i]]
            for i in range(nrows)
        ]
        basis = list(range(ncols, ncols + nrows))
        # Phase-1 objective row: minimize the sum of artificials.
        objective = [0.0] * ncols + [1.0] * nrows + [0.0]
        for i in range(nrows):
            for j in range(total + 1):
                objective[j] -= tableau[i][j]
        cap = self.max_iterations or (64 + 16 * (nrows + ncols))
        for _iteration in range(cap):
            entering = None
            best = -self.pivot_tol
            for j in range(total):
                if objective[j] < best:  # Dantzig: most negative reduced cost
                    best = objective[j]
                    entering = j
            if entering is None:
                break
            leaving = None
            best_ratio = None
            for i in range(nrows):
                coef = tableau[i][entering]
                if coef > self.pivot_tol:
                    ratio = tableau[i][-1] / coef
                    if (
                        best_ratio is None
                        or ratio < best_ratio - self.pivot_tol
                        or (abs(ratio - best_ratio) <= self.pivot_tol
                            and basis[i] < basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                raise BackendError("float phase-1 unbounded (numerical trouble)")
            self._pivot(tableau, basis, objective, leaving, entering, total)
        else:
            raise BackendError("float simplex hit its iteration cap")
        infeasibility = -objective[-1]
        if infeasibility > self.feastol:
            return None  # confidently infeasible
        if infeasibility > self.pivot_tol:
            raise BackendError("float phase-1 optimum too close to tolerance")
        x = [0.0] * total
        for i, var in enumerate(basis):
            x[var] = tableau[i][-1]
        return x

    @staticmethod
    def _pivot(tableau, basis, objective, row_idx, col_idx, total):
        inv = 1.0 / tableau[row_idx][col_idx]
        tableau[row_idx] = [x * inv for x in tableau[row_idx]]
        pivot_row = tableau[row_idx]
        for i in range(len(tableau)):
            if i != row_idx and tableau[i][col_idx] != 0.0:
                factor = tableau[i][col_idx]
                tableau[i] = [x - factor * y for x, y in zip(tableau[i], pivot_row)]
        factor = objective[col_idx]
        if factor != 0.0:
            for j in range(total + 1):
                objective[j] -= factor * pivot_row[j]
        basis[row_idx] = col_idx


#: Shared default instances — the backends are stateless between solves.
EXACT_BACKEND = ExactBackend()
FLOAT_BACKEND = FloatBackend()


@dataclass(frozen=True)
class BackendPolicy:
    """Which backend a solver run should search on.

    ``auto`` sizes the decision: small systems pivot exactly about as
    fast as they certify, so auto keeps them on the exact path and
    switches to float search once the action-count hint reaches
    ``auto_threshold`` (total actions, n + m for a bimatrix game).
    """

    mode: str = MODE_EXACT
    auto_threshold: int = 10

    def __post_init__(self):
        if self.mode not in BACKEND_MODES:
            raise LinearAlgebraError(
                f"unknown backend mode {self.mode!r}; expected one of {BACKEND_MODES}"
            )
        if self.auto_threshold < 0:
            raise LinearAlgebraError("auto_threshold must be non-negative")

    def search_backend(self, size_hint: int = 0) -> NumericBackend:
        """The backend candidate search should run on for this size."""
        if self.mode == MODE_EXACT:
            return EXACT_BACKEND
        if self.mode == MODE_FLOAT_CERTIFY:
            return FLOAT_BACKEND
        return FLOAT_BACKEND if size_hint >= self.auto_threshold else EXACT_BACKEND


#: Canonical policy instances.
EXACT_POLICY = BackendPolicy(MODE_EXACT)
FLOAT_CERTIFY_POLICY = BackendPolicy(MODE_FLOAT_CERTIFY)
AUTO_POLICY = BackendPolicy(MODE_AUTO)

_POLICY_BY_MODE = {
    MODE_EXACT: EXACT_POLICY,
    MODE_FLOAT_CERTIFY: FLOAT_CERTIFY_POLICY,
    MODE_AUTO: AUTO_POLICY,
}


def resolve_policy(policy) -> BackendPolicy:
    """Normalize ``None`` / mode string / policy object to a policy.

    ``None`` means the seed behaviour: everything exact.
    """
    if policy is None:
        return EXACT_POLICY
    if isinstance(policy, BackendPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICY_BY_MODE[policy]
        except KeyError:
            raise LinearAlgebraError(
                f"unknown backend mode {policy!r}; expected one of {BACKEND_MODES}"
            ) from None
    raise LinearAlgebraError(f"cannot interpret backend policy {policy!r}")


def float_matrix(rows: Sequence[Sequence]) -> list[list[float]]:
    """Convert a rational matrix to plain float lists for the search phase."""
    return [[float(x) for x in row] for row in rows]
