"""Pluggable numeric backends: search fast, certify exact.

The paper's central asymmetry — *finding* an equilibrium is PPAD-hard
while *verifying* one is cheap and must be exact — maps onto a two-phase
solver pipeline:

1. **Search** runs on a :class:`NumericBackend`.  The
   :class:`ExactBackend` is the seed behaviour (Fraction Gaussian
   elimination and simplex, authoritative by construction).  The
   :class:`FloatBackend` runs the same algorithms in float64 with pivot
   tolerances — orders of magnitude faster because rational coefficient
   growth is the dominant cost of exact pivoting.
2. **Certification** is always exact.  Every candidate a float search
   produces is reconstructed as Fractions (support-restricted exact
   re-solve) and checked against the exact Lemma-1 conditions before it
   is returned; candidates that fail are recomputed on the exact path.
   No approximate value ever escapes the solver layer.

:class:`BackendPolicy` names the three modes callers can request —
``"exact"``, ``"float+certify"`` and ``"auto"`` — and is what the core
layer plumbs through advice packages and the audit log.

Float routines here are stdlib-only (plain lists of floats, no numpy).
A float backend signals an *inconclusive* solve by raising
:class:`~repro.errors.BackendError`; pipeline callers treat that exactly
like a certification failure and fall back to the exact path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import BackendError, LinearAlgebraError
from repro.linalg import int_exact as _int_exact
from repro.linalg import int_lp as _lp

#: The backend modes the core layer can request per advice package.
MODE_EXACT = "exact"
MODE_FLOAT_CERTIFY = "float+certify"
MODE_NUMPY = "numpy"
MODE_AUTO = "auto"
BACKEND_MODES = (MODE_EXACT, MODE_FLOAT_CERTIFY, MODE_NUMPY, MODE_AUTO)

#: Executor names a policy can resolve to (see BackendPolicy.workers).
EXECUTOR_SERIAL = "serial"
EXECUTOR_SHARDED = "sharded"
EXECUTOR_NAMES = (EXECUTOR_SERIAL, EXECUTOR_SHARDED)


#: Default threshold below which a probability in an approximate
#: solution is read as "off the support" when solvers extract candidate
#: supports for exact reconstruction.  This is *the* support tolerance:
#: every backend exposes it as :attr:`NumericBackend.support_tol`
#: (exact backends keep the default but never consult it), so all
#: phases of a pipeline run share one threshold instead of each module
#: shadowing its own copy.
DEFAULT_SUPPORT_TOL = 1e-7

#: Sentinel a batched screen returns for a system it could not decide
#: (the list-level analogue of raising :class:`BackendError`).  Callers
#: must re-decide such systems on the exact path.
INCONCLUSIVE = type("_Inconclusive", (), {
    "__repr__": lambda self: "INCONCLUSIVE",
    "__reduce__": lambda self: (_inconclusive_singleton, ()),
})()


def _inconclusive_singleton():
    """Unpickle :data:`INCONCLUSIVE` to the same identity-comparable object."""
    return INCONCLUSIVE


class NumericBackend:
    """The solver-facing arithmetic seam.

    A backend answers the two numeric questions the equilibrium searches
    ask: "solve this square system" and "find a nonnegative feasible
    point of ``Ax = b``".  Exact backends answer authoritatively; float
    backends answer quickly and may raise :class:`BackendError` when the
    numerics are inconclusive.

    Two batched/warm-start hooks complete the seam for the staged
    candidate engine: :meth:`screen_feasible` decides many feasibility
    systems at once (vectorized backends override it; the default is a
    sequential loop), and :meth:`try_basis` attempts a crash solve from
    a known-good basis so enumeration loops can warm-start neighbouring
    support pairs.
    """

    #: Human-readable backend name, recorded in audit logs and benches.
    name: str = "abstract"
    #: The resolved policy-mode string this backend answers for (what
    #: advice packages and the audit log record).
    mode: str = "exact"
    #: True iff results need no downstream certification.
    exact: bool = True
    #: Off-support threshold shared by every search/reconstruction phase.
    support_tol: float = DEFAULT_SUPPORT_TOL
    #: True iff :meth:`screen_feasible` genuinely batches (vectorized
    #: stacks); screening loops prefer warm-started scalar solves when
    #: it does not.
    batched_screen: bool = False

    def solve_square(self, matrix: Sequence[Sequence], rhs: Sequence):
        raise NotImplementedError

    def find_feasible_point(
        self, a_eq: Sequence[Sequence], b_eq: Sequence,
        upper_bounds: Sequence | None = None,
    ):
        raise NotImplementedError

    def screen_feasible(self, systems: Sequence[tuple]) -> list:
        """Decide a batch of ``Ax = b, x >= 0`` feasibility systems.

        ``systems`` is a sequence of ``(rows, rhs)`` pairs.  Returns one
        entry per system: a feasible point (sequence), ``None`` for
        confidently infeasible, or :data:`INCONCLUSIVE` where the
        numerics cannot decide (callers re-solve those exactly).  The
        base implementation screens sequentially; vectorized backends
        stack same-shaped systems and decide them in bulk.
        """
        results = []
        for rows, rhs in systems:
            try:
                results.append(self.find_feasible_point(rows, rhs))
            except BackendError:
                results.append(INCONCLUSIVE)
        return results

    def try_basis(self, a_eq: Sequence[Sequence], b_eq: Sequence,
                  basis_columns: Sequence[int]):
        """Crash solve: the basic solution of ``Ax = b`` for a given basis.

        ``basis_columns`` selects one column per constraint row.  If the
        basis matrix is nonsingular and the induced basic solution is
        nonnegative, the full feasible point is returned; otherwise
        ``None`` (the caller falls back to a cold feasibility solve).
        This is the warm-start primitive: a neighbouring support pair's
        final basis very often stays feasible when one action changes.
        """
        nrows = len(a_eq)
        ncols = len(a_eq[0]) if a_eq else 0
        columns = list(basis_columns)
        if len(columns) != nrows or len(set(columns)) != nrows:
            return None
        if any(not 0 <= c < ncols for c in columns):
            return None
        sub = [[row[c] for c in columns] for row in a_eq]
        try:
            basic_values = self.solve_square(sub, b_eq)
        except (BackendError, LinearAlgebraError):
            return None
        tol = 0 if self.exact else self.support_tol
        if any(v < -tol for v in basic_values):
            return None
        zero = basic_values[0] * 0 if basic_values else 0
        point = [zero] * ncols
        for c, v in zip(columns, basic_values):
            # Clip the tolerated tiny negatives so callers see x >= 0.
            point[c] = v if (self.exact or v > 0) else zero
        return point


class ExactBackend(NumericBackend):
    """The seed semantics, bit for bit — on the fraction-free kernel.

    Square solves run integer Bareiss elimination
    (:mod:`repro.linalg.int_exact`), which returns exactly the Fractions
    the seed's Fraction-arithmetic elimination did, just without its
    per-step gcd normalization; LP feasibility stays on the exact
    simplex.
    """

    name = "exact"
    mode = MODE_EXACT
    exact = True

    def solve_square(self, matrix, rhs):
        return _int_exact.solve_square(matrix, rhs)

    def find_feasible_point(self, a_eq, b_eq, upper_bounds=None):
        return _lp.find_feasible_point(a_eq, b_eq, upper_bounds=upper_bounds)


class FloatBackend(NumericBackend):
    """float64 elimination and two-phase simplex with pivot tolerances.

    ``feastol`` separates "confidently infeasible" from "inconclusive":
    a phase-1 optimum above ``feastol`` rejects the system, one within
    ``(pivot_tol, feastol]`` raises :class:`BackendError` so the caller
    re-decides exactly.  ``max_iterations`` caps simplex pivoting (the
    float path uses Dantzig's rule, which is fast but not anti-cycling);
    hitting the cap is likewise inconclusive, never an answer.

    ``support_tol`` overrides :data:`DEFAULT_SUPPORT_TOL` per instance;
    it lives on the backend so all phases of a pipeline run share one
    set of tolerances (solvers must consult ``backend.support_tol``
    rather than shadowing their own constants).
    """

    name = "float64"
    mode = MODE_FLOAT_CERTIFY
    exact = False

    def __init__(self, feastol: float = 1e-7, pivot_tol: float = 1e-9,
                 max_iterations: int | None = None,
                 support_tol: float = DEFAULT_SUPPORT_TOL):
        if feastol <= 0 or pivot_tol <= 0 or support_tol <= 0:
            raise LinearAlgebraError("tolerances must be positive")
        self.feastol = float(feastol)
        self.pivot_tol = float(pivot_tol)
        self.support_tol = float(support_tol)
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    # Square solves
    # ------------------------------------------------------------------

    def solve_square(self, matrix, rhs):
        a = [[float(x) for x in row] for row in matrix]
        b = [float(x) for x in rhs]
        n = len(a)
        if any(len(row) != n for row in a):
            raise LinearAlgebraError("solve_square requires a square matrix")
        if len(b) != n:
            raise LinearAlgebraError("rhs length does not match matrix")
        scale = max((abs(x) for row in a for x in row), default=1.0) or 1.0
        for col in range(n):
            pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
            if abs(a[pivot][col]) <= self.pivot_tol * scale:
                raise BackendError("float pivot below tolerance (near-singular)")
            a[col], a[pivot] = a[pivot], a[col]
            b[col], b[pivot] = b[pivot], b[col]
            inv = 1.0 / a[col][col]
            for r in range(n):
                if r != col and a[r][col] != 0.0:
                    factor = a[r][col] * inv
                    arow, prow = a[r], a[col]
                    for j in range(col, n):
                        arow[j] -= factor * prow[j]
                    b[r] -= factor * b[col]
        return [b[i] / a[i][i] for i in range(n)]

    # ------------------------------------------------------------------
    # Feasibility (two-phase simplex over floats)
    # ------------------------------------------------------------------

    def find_feasible_point(self, a_eq, b_eq, upper_bounds=None):
        a = [[float(x) for x in row] for row in a_eq]
        b = [float(x) for x in b_eq]
        ncols = len(a[0]) if a else 0
        if upper_bounds is not None:
            ubs = [float(u) for u in upper_bounds]
            if len(ubs) != ncols:
                raise LinearAlgebraError("upper bound length does not match variables")
            nslack = len(ubs)
            for row in a:
                row.extend([0.0] * nslack)
            for j, u in enumerate(ubs):
                bound_row = [0.0] * (ncols + nslack)
                bound_row[j] = 1.0
                bound_row[ncols + j] = 1.0
                a.append(bound_row)
                b.append(u)
        solved = self._phase1(a, b)
        if solved is None:
            return None
        return solved[0][:ncols]

    def find_feasible_basis(
        self, a_eq: Sequence[Sequence], b_eq: Sequence,
    ) -> tuple[list[float], list[int]] | None:
        """Like :meth:`find_feasible_point` but also returns the final basis.

        Returns ``(point, basis_columns)`` where ``basis_columns`` has
        one structural-column index per constraint row, or ``None`` when
        confidently infeasible.  A basis that still contains a phase-1
        artificial (possible on degenerate systems) is reported as
        unusable by raising nothing and returning an empty basis list —
        callers treat an empty basis as "no warm-start hint".  No upper
        bounds here: the warm-start path is for plain ``Ax = b, x >= 0``
        screens.
        """
        a = [[float(x) for x in row] for row in a_eq]
        b = [float(x) for x in b_eq]
        ncols = len(a[0]) if a else 0
        solved = self._phase1(a, b)
        if solved is None:
            return None
        point, basis = solved
        if any(var >= ncols for var in basis):
            return point[:ncols], []  # artificial left basic: no hint
        return point[:ncols], list(basis)

    def _phase1(self, a, b) -> tuple[list[float], list[int]] | None:
        """``(x, basis)`` of ``Ax = b, x >= 0`` or None (raises if unsure)."""
        nrows = len(a)
        ncols = len(a[0]) if a else 0
        if any(len(row) != ncols for row in a):
            raise LinearAlgebraError("LP constraint matrix has ragged rows")
        if len(b) != nrows:
            raise LinearAlgebraError("LP rhs length does not match constraints")
        a = [row[:] for row in a]
        b = b[:]
        # Row equilibration: divide each constraint by its largest
        # coefficient so the absolute tolerances below act relatively.
        # Feasibility of {Ax = b, x >= 0} is unchanged, but a system with
        # payoffs in the billions no longer swamps a 1e-7 feastol.
        for i in range(nrows):
            scale = max(max(abs(x) for x in a[i]), abs(b[i])) if a[i] else abs(b[i])
            if scale > 0.0:
                inv = 1.0 / scale
                a[i] = [x * inv for x in a[i]]
                b[i] *= inv
        for i in range(nrows):
            if b[i] < 0.0:
                a[i] = [-x for x in a[i]]
                b[i] = -b[i]
        total = ncols + nrows
        tableau = [
            a[i] + [1.0 if j == i else 0.0 for j in range(nrows)] + [b[i]]
            for i in range(nrows)
        ]
        basis = list(range(ncols, ncols + nrows))
        # Phase-1 objective row: minimize the sum of artificials.
        objective = [0.0] * ncols + [1.0] * nrows + [0.0]
        for i in range(nrows):
            for j in range(total + 1):
                objective[j] -= tableau[i][j]
        cap = self.max_iterations or (64 + 16 * (nrows + ncols))
        for _iteration in range(cap):
            entering = None
            best = -self.pivot_tol
            for j in range(total):
                if objective[j] < best:  # Dantzig: most negative reduced cost
                    best = objective[j]
                    entering = j
            if entering is None:
                break
            leaving = None
            best_ratio = None
            for i in range(nrows):
                coef = tableau[i][entering]
                if coef > self.pivot_tol:
                    ratio = tableau[i][-1] / coef
                    if (
                        best_ratio is None
                        or ratio < best_ratio - self.pivot_tol
                        or (abs(ratio - best_ratio) <= self.pivot_tol
                            and basis[i] < basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                raise BackendError("float phase-1 unbounded (numerical trouble)")
            self._pivot(tableau, basis, objective, leaving, entering, total)
        else:
            raise BackendError("float simplex hit its iteration cap")
        infeasibility = -objective[-1]
        if infeasibility > self.feastol:
            return None  # confidently infeasible
        if infeasibility > self.pivot_tol:
            raise BackendError("float phase-1 optimum too close to tolerance")
        x = [0.0] * total
        for i, var in enumerate(basis):
            x[var] = tableau[i][-1]
        return x, basis

    @staticmethod
    def _pivot(tableau, basis, objective, row_idx, col_idx, total):
        inv = 1.0 / tableau[row_idx][col_idx]
        tableau[row_idx] = [x * inv for x in tableau[row_idx]]
        pivot_row = tableau[row_idx]
        for i in range(len(tableau)):
            if i != row_idx and tableau[i][col_idx] != 0.0:
                factor = tableau[i][col_idx]
                tableau[i] = [x - factor * y for x, y in zip(tableau[i], pivot_row)]
        factor = objective[col_idx]
        if factor != 0.0:
            for j in range(total + 1):
                objective[j] -= factor * pivot_row[j]
        basis[row_idx] = col_idx


#: Shared default instances — the backends are stateless between solves.
EXACT_BACKEND = ExactBackend()
FLOAT_BACKEND = FloatBackend()

# The numpy-vectorized backend is optional: the library must run (and
# the stdlib float path must screen) on a bare interpreter.  Importing
# it here keeps the gating in one place; everything downstream asks
# this module, never numpy itself.
try:
    from repro.linalg.numpy_backend import NumpyBackend

    NUMPY_BACKEND: NumericBackend | None = NumpyBackend()
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    NumpyBackend = None  # type: ignore[assignment]
    NUMPY_BACKEND = None


def numpy_available() -> bool:
    """True iff the vectorized numpy backend imported successfully."""
    return NUMPY_BACKEND is not None


def _best_approximate_backend() -> NumericBackend:
    """The fastest available non-exact backend (numpy if importable)."""
    return NUMPY_BACKEND if NUMPY_BACKEND is not None else FLOAT_BACKEND


@dataclass(frozen=True)
class BackendPolicy:
    """Which backend — and how many shards — a solver run should search on.

    ``auto`` sizes the decision: small systems pivot exactly about as
    fast as they certify, so auto keeps them on the exact path and
    switches to approximate search once the action-count hint reaches
    ``auto_threshold`` (total actions, n + m for a bimatrix game).
    Approximate ``auto`` search prefers the vectorized numpy backend and
    falls back to the stdlib float backend when numpy is unavailable;
    ``mode="numpy"`` requested explicitly falls back the same way, so a
    policy never fails to resolve on a bare interpreter.

    ``workers`` selects the screening executor: ``1`` screens in
    process (``serial``); ``> 1`` shards support-pair chunks across that
    many worker processes (``sharded``); ``0`` means "one worker per
    CPU".  ``chunk_size`` overrides the deterministic chunking used by
    both executors (the default is picked by the enumeration layer);
    results are identical for every worker count by construction.
    """

    mode: str = MODE_EXACT
    auto_threshold: int = 10
    workers: int = 1
    chunk_size: int | None = None

    def __post_init__(self):
        if self.mode not in BACKEND_MODES:
            raise LinearAlgebraError(
                f"unknown backend mode {self.mode!r}; expected one of {BACKEND_MODES}"
            )
        if self.auto_threshold < 0:
            raise LinearAlgebraError("auto_threshold must be non-negative")
        if self.workers < 0:
            raise LinearAlgebraError("workers must be non-negative (0 = one per CPU)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise LinearAlgebraError("chunk_size must be positive")

    def search_backend(self, size_hint: int = 0) -> NumericBackend:
        """The backend candidate search should run on for this size."""
        if self.mode == MODE_EXACT:
            return EXACT_BACKEND
        if self.mode == MODE_FLOAT_CERTIFY:
            return FLOAT_BACKEND
        if self.mode == MODE_NUMPY:
            return _best_approximate_backend()
        if size_hint >= self.auto_threshold:
            return _best_approximate_backend()
        return EXACT_BACKEND

    def resolved_workers(self) -> int:
        """The concrete worker count (``0`` resolved to the CPU count)."""
        if self.workers == 0:
            import os

            return max(1, os.cpu_count() or 1)
        return self.workers


#: Canonical policy instances.
EXACT_POLICY = BackendPolicy(MODE_EXACT)
FLOAT_CERTIFY_POLICY = BackendPolicy(MODE_FLOAT_CERTIFY)
NUMPY_POLICY = BackendPolicy(MODE_NUMPY)
AUTO_POLICY = BackendPolicy(MODE_AUTO)
#: "sharded" as a mode string: vectorized search, one worker per CPU.
SHARDED_POLICY = BackendPolicy(MODE_NUMPY, workers=0)

_POLICY_BY_MODE = {
    MODE_EXACT: EXACT_POLICY,
    MODE_FLOAT_CERTIFY: FLOAT_CERTIFY_POLICY,
    MODE_NUMPY: NUMPY_POLICY,
    MODE_AUTO: AUTO_POLICY,
    "sharded": SHARDED_POLICY,
}


def resolve_policy(policy) -> BackendPolicy:
    """Normalize ``None`` / mode string / policy object to a policy.

    ``None`` means the seed behaviour: everything exact.  Mode strings
    accept the four backend modes plus ``"sharded"`` (numpy search,
    process-pool screening with one worker per CPU).
    """
    if policy is None:
        return EXACT_POLICY
    if isinstance(policy, BackendPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICY_BY_MODE[policy]
        except KeyError:
            raise LinearAlgebraError(
                f"unknown backend mode {policy!r}; expected one of "
                f"{BACKEND_MODES + ('sharded',)}"
            ) from None
    raise LinearAlgebraError(f"cannot interpret backend policy {policy!r}")


def float_matrix(rows: Sequence[Sequence]) -> list[list[float]]:
    """Convert a rational matrix to plain float lists for the search phase."""
    return [[float(x) for x in row] for row in rows]
