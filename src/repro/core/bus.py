"""The message bus: the distributed-system substrate of Fig. 1.

The inventor, the agents and the verifiers are separate parties; they
interact only by sending messages.  The bus is deterministic and
in-process but enforces the separation: parties must be registered,
messages are logged in order, and per-party byte counters expose the
communication cost of every protocol built on top.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Iterable

from repro.core.messages import Message
from repro.errors import ProtocolError

#: Optional delivery hook: called with each delivered message.
DeliveryHook = Callable[[Message], None]


class MessageBus:
    """In-process, ordered, byte-accounted message delivery."""

    def __init__(self):
        self._endpoints: dict[str, DeliveryHook | None] = {}
        self._log: list[Message] = []
        self._bytes_sent: dict[str, int] = defaultdict(int)
        self._bytes_received: dict[str, int] = defaultdict(int)
        self._sequence = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, hook: DeliveryHook | None = None) -> None:
        """Register a party; ``hook`` (if any) observes its inbound messages."""
        if name in self._endpoints:
            raise ProtocolError(f"endpoint {name!r} already registered")
        self._endpoints[name] = hook

    def is_registered(self, name: str) -> bool:
        return name in self._endpoints

    def endpoints(self) -> tuple[str, ...]:
        return tuple(self._endpoints)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, sender: str, recipient: str, kind: str, payload) -> Message:
        """Send one message; returns the sequenced, logged message."""
        if sender not in self._endpoints:
            raise ProtocolError(f"unknown sender {sender!r}")
        if recipient not in self._endpoints:
            raise ProtocolError(f"unknown recipient {recipient!r}")
        # Sequencing, logging and byte accounting are one atomic step so
        # concurrent verification sessions keep the log gap-free.
        with self._lock:
            self._sequence += 1
            message = Message(
                sender=sender,
                recipient=recipient,
                kind=kind,
                payload=payload,
                sequence=self._sequence,
            )
            size = message.size_bytes()  # raises ProtocolError on bad payloads
            self._log.append(message)
            self._bytes_sent[sender] += size
            self._bytes_received[recipient] += size
        hook = self._endpoints[recipient]
        if hook is not None:
            hook(message)
        return message

    # ------------------------------------------------------------------
    # Accounting and inspection
    # ------------------------------------------------------------------

    @property
    def log(self) -> tuple[Message, ...]:
        return tuple(self._log)

    def messages_between(self, sender: str, recipient: str) -> tuple[Message, ...]:
        return tuple(
            m for m in self._log if m.sender == sender and m.recipient == recipient
        )

    def messages_of_kind(self, kind: str) -> tuple[Message, ...]:
        return tuple(m for m in self._log if m.kind == kind)

    def bytes_sent(self, name: str) -> int:
        return self._bytes_sent[name]

    def bytes_received(self, name: str) -> int:
        return self._bytes_received[name]

    def total_bytes(self) -> int:
        return sum(m.size_bytes() for m in self._log)

    def conversation(self, parties: Iterable[str]) -> tuple[Message, ...]:
        """All messages whose sender and recipient are both in ``parties``."""
        party_set = set(parties)
        return tuple(
            m
            for m in self._log
            if m.sender in party_set and m.recipient in party_set
        )
