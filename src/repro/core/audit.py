"""The audit log: accountability for inventors, verifiers and agents.

The paper's discussion section (the Ron/Norton anecdote) makes auditing a
first-class feature: the rationality authority "produces a check-able
proof for the optimality of the suggestion ... and may be used (after
auditing Norton's actions) to blame Norton for not using the rationality
authority results to act rationally."  Likewise "actions of dishonest
game inventors, agents, and veriﬁers ... can be reported to a reputation
system that audits their actions."

The log is append-only with a logical clock; records carry an actor, an
event tag and free-form details.  Blame queries summarize who misbehaved
and how often.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

# Event tags live in the machine-checked registry (audit_events.py);
# the blame helpers below consume these three.
from repro.core.audit_events import (
    EVENT_AGENT_BLAMED,
    EVENT_INVENTOR_BLAMED,
    EVENT_VERIFIER_BLAMED,
)


@dataclass(frozen=True)
class AuditRecord:
    """One append-only audit entry."""

    clock: int
    session_id: str
    actor: str
    event: str
    details: dict[str, Any] = field(default_factory=dict)


class AuditLog:
    """Append-only audit trail with blame queries.

    Appends are serialized by a lock so the log stays consistent when
    the consultation service runs verifiers concurrently; the logical
    clock remains strictly increasing and gap-free in every mode.
    """

    def __init__(self):
        self._records: list[AuditRecord] = []
        self._clock = 0
        self._lock = threading.Lock()

    def record(self, session_id: str, actor: str, event: str, **details) -> AuditRecord:
        with self._lock:
            self._clock += 1
            entry = AuditRecord(
                clock=self._clock,
                session_id=session_id,
                actor=actor,
                event=event,
                details=dict(details),
            )
            self._records.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Blame helpers
    # ------------------------------------------------------------------

    def blame_inventor(self, session_id: str, inventor: str, reason: str) -> AuditRecord:
        """A rejected proof marks the inventor for blame."""
        return self.record(
            session_id, inventor, EVENT_INVENTOR_BLAMED, reason=reason
        )

    def blame_verifier(self, session_id: str, verifier: str, reason: str) -> AuditRecord:
        """A dissenting verifier (out-voted by the majority) is noted."""
        return self.record(
            session_id, verifier, EVENT_VERIFIER_BLAMED, reason=reason
        )

    def blame_agent(self, session_id: str, agent: str, reason: str) -> AuditRecord:
        """The Norton case: an agent ignored verified rational advice."""
        return self.record(session_id, agent, EVENT_AGENT_BLAMED, reason=reason)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def records(self) -> tuple[AuditRecord, ...]:
        return tuple(self._records)

    def events_for(self, actor: str) -> tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if r.actor == actor)

    def events_of(self, event: str) -> tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if r.event == event)

    def session(self, session_id: str) -> tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if r.session_id == session_id)

    def blame_counts(self) -> dict[str, int]:
        """How many times each actor has been blamed, any blame kind."""
        counts: dict[str, int] = {}
        blame_events = {
            EVENT_INVENTOR_BLAMED,
            EVENT_VERIFIER_BLAMED,
            EVENT_AGENT_BLAMED,
        }
        for record in self._records:
            if record.event in blame_events:
                counts[record.actor] = counts.get(record.actor, 0) + 1
        return counts
