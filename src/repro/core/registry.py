"""Verification procedures, the verifier registry and majority voting.

"The veriﬁers are trustable service providers that proﬁt from selling
general purpose veriﬁcation procedures v() ... We note the possibility of
having several veriﬁers, such that their majority is trusted."

A :class:`VerificationProcedure` is the paper's v(): given a game, an
advice and a context (randomness, and a prover handle for interactive
formats) it returns a :class:`Verdict`.  The registry holds named
procedures; :func:`majority_verdict` aggregates several verifiers'
verdicts so a dishonest minority is out-voted.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.advice import Advice, ProofFormat, SolutionConcept
from repro.errors import ProofError, ProtocolError
from repro.fractions_util import to_fraction
from repro.games.base import Game
from repro.games.bimatrix import COLUMN, ROW, BimatrixGame
from repro.games.participation import ParticipationGame
from repro.games.profiles import MixedProfile
from repro.games.symmetric import SymmetricTwoActionGame
from repro.equilibria.mixed import is_mixed_nash
from repro.equilibria.pure import is_pure_nash
from repro.interactive.p1 import P1Announcement, P1Verifier
from repro.interactive.p2 import P2Prover, P2Verifier
from repro.online.parallel_links import verify_suggestion
from repro.online.participation_online import OnlineAdvice, verify_online_advice
from repro.proofs.certificates import (
    MaxNashCertificate,
    NashCertificate,
)
from repro.proofs.checker import ProofKernel
from repro.proofs.serialize import decode_certificate


@dataclass(frozen=True)
class Verdict:
    """One verifier's answer, with its cost accounting."""

    verifier: str
    accepted: bool
    reason: str
    cost: dict[str, int] = field(default_factory=dict)


@dataclass
class VerificationContext:
    """Everything a procedure may need beyond the game and the advice.

    ``backend`` echoes the solver mode the advice declares (see
    :class:`~repro.linalg.backend.BackendPolicy`).  It is informational:
    verification procedures are the certification side of the two-phase
    pipeline and always evaluate the proof obligations with exact
    arithmetic, whatever backend the *inventor* searched on.  Procedures
    may use it to annotate their verdicts or price their service.
    """

    rng: random.Random
    prover: Any = None  # live prover handle for interactive formats
    backend: str = "exact"
    #: Echo of the advice's search executor ("serial" / "sharded") —
    #: informational, like ``backend``: certification is process-local
    #: and exact whatever fan-out the inventor's search used.
    executor: str = "serial"
    #: Echo of the advice's solve-cache state ("", "hit", "warm",
    #: "miss") — informational: a cache hit serves a previously
    #: certified solution, and the proof obligations this procedure
    #: checks are identical either way.
    cache: str = ""


class VerificationProcedure(abc.ABC):
    """The paper's v(): a general-purpose, sellable verification procedure."""

    def __init__(self, name: str):
        self.name = name

    @abc.abstractmethod
    def supports(self, advice: Advice) -> bool:
        """Can this procedure check this advice's concept/format?"""

    @abc.abstractmethod
    def verify(self, game: Game, advice: Advice, context: VerificationContext) -> Verdict:
        """Run the check.  Must not raise on a *failing* proof — return a
        rejecting verdict so the authority can audit it."""

    def _verdict(self, accepted: bool, reason: str, **cost: int) -> Verdict:
        return Verdict(verifier=self.name, accepted=accepted, reason=reason, cost=cost)


class CertificateProcedure(VerificationProcedure):
    """Checks Fig. 2 certificates with the proof kernel (Sect. 3)."""

    _CONCEPTS = {
        SolutionConcept.PURE_NASH,
        SolutionConcept.MAXIMAL_PURE_NASH,
        SolutionConcept.MINIMAL_PURE_NASH,
        SolutionConcept.DOMINANT_STRATEGY,
    }

    def supports(self, advice: Advice) -> bool:
        return (
            advice.proof_format is ProofFormat.CERTIFICATE
            and advice.concept in self._CONCEPTS
        )

    def verify(self, game, advice, context) -> Verdict:
        try:
            cert = (
                decode_certificate(advice.proof)
                if isinstance(advice.proof, dict)
                else advice.proof
            )
        except ProofError as exc:
            return self._verdict(False, f"malformed certificate: {exc}")
        from repro.proofs.certificates import DominanceCertificate

        suggestion = tuple(advice.suggestion)
        if isinstance(cert, NashCertificate):
            if advice.concept is not SolutionConcept.PURE_NASH:
                return self._verdict(False, "plain Nash certificate cannot "
                                            "establish maximality")
            if cert.profile != suggestion:
                return self._verdict(False, "certificate is for a different profile")
        elif isinstance(cert, DominanceCertificate):
            if advice.concept is not SolutionConcept.DOMINANT_STRATEGY:
                return self._verdict(False, "dominance certificate does not match "
                                            "the advertised concept")
            if cert.profile != suggestion:
                return self._verdict(False, "certificate is for a different profile")
        elif isinstance(cert, MaxNashCertificate):
            if cert.candidate != suggestion:
                return self._verdict(False, "certificate is for a different candidate")
            wants_minimal = advice.concept is SolutionConcept.MINIMAL_PURE_NASH
            if cert.minimal != wants_minimal:
                return self._verdict(False, "certificate direction does not match "
                                            "the advertised concept")
        else:
            return self._verdict(False, "unsupported certificate type for this advice")
        result = ProofKernel(game).check(cert)
        return self._verdict(
            result.accepted,
            result.reason,
            utility_evaluations=result.utility_evaluations,
            statements_checked=result.statements_checked,
        )


class EmptyProofProcedure(VerificationProcedure):
    """The NTM-style empty proof: evaluate the suggestion directly."""

    def supports(self, advice: Advice) -> bool:
        return advice.proof_format is ProofFormat.EMPTY_PROOF and advice.concept in (
            SolutionConcept.PURE_NASH,
            SolutionConcept.MIXED_NASH,
        )

    def verify(self, game, advice, context) -> Verdict:
        if advice.concept is SolutionConcept.PURE_NASH:
            profile = tuple(advice.suggestion)
            accepted = is_pure_nash(game, profile)
            return self._verdict(
                accepted,
                "pure Nash verified by evaluation" if accepted
                else "a profitable deviation exists",
            )
        mixed = advice.suggestion
        if not isinstance(mixed, MixedProfile):
            return self._verdict(False, "suggestion is not a mixed profile")
        accepted = is_mixed_nash(game, mixed)
        return self._verdict(
            accepted,
            "mixed Nash verified by evaluation" if accepted
            else "a supported action is not a best reply",
        )


class P1Procedure(VerificationProcedure):
    """Runs the Fig. 3 verification for the advised agent (both sides if
    the advice addresses the authority rather than one agent)."""

    def supports(self, advice: Advice) -> bool:
        return advice.proof_format is ProofFormat.INTERACTIVE_P1

    def verify(self, game, advice, context) -> Verdict:
        if not isinstance(game, BimatrixGame):
            return self._verdict(False, "P1 applies to bimatrix games")
        proof = advice.proof
        if isinstance(proof, P1Announcement):
            announcement = proof
        else:
            try:
                announcement = P1Announcement(
                    row_support=tuple(proof["row_support"]),
                    column_support=tuple(proof["column_support"]),
                )
            except (TypeError, KeyError) as exc:
                return self._verdict(False, f"malformed P1 announcement: {exc}")
        agents = (ROW, COLUMN) if advice.agent == "both" else (int(advice.agent),)
        solves = 0
        for agent in agents:
            report = P1Verifier(game, agent).verify(announcement)
            solves += report.linear_solves + report.lp_fallbacks
            if not report.accepted:
                return self._verdict(False, f"agent {agent}: {report.reason}",
                                     linear_solves=solves)
        return self._verdict(True, "P1 supports verified", linear_solves=solves)


class P2Procedure(VerificationProcedure):
    """Runs the Fig. 4 private verification against a live prover handle."""

    def __init__(self, name: str, required_conclusive: int = 1):
        super().__init__(name)
        self._required = required_conclusive

    def supports(self, advice: Advice) -> bool:
        return advice.proof_format is ProofFormat.INTERACTIVE_P2

    def verify(self, game, advice, context) -> Verdict:
        if not isinstance(game, BimatrixGame):
            return self._verdict(False, "P2 applies to bimatrix games")
        prover = context.prover
        if not isinstance(prover, P2Prover):
            return self._verdict(False, "P2 needs a live prover handle")
        agent = int(advice.agent)
        verifier = P2Verifier(
            game, agent, rng=context.rng, required_conclusive=self._required
        )
        report = verifier.verify(prover)
        return self._verdict(
            report.accepted,
            report.reason,
            rounds=report.rounds,
            conclusive_rounds=report.conclusive_rounds,
        )


class IndifferenceProcedure(VerificationProcedure):
    """Eq. (5): checks an advised symmetric probability p (Sect. 5)."""

    def supports(self, advice: Advice) -> bool:
        return advice.proof_format is ProofFormat.INDIFFERENCE_IDENTITY

    def verify(self, game, advice, context) -> Verdict:
        if not isinstance(game, SymmetricTwoActionGame):
            return self._verdict(False, "indifference checks need a symmetric "
                                        "two-action game")
        try:
            p = to_fraction(advice.suggestion)
        except TypeError:
            return self._verdict(False, "suggestion is not a probability")
        if isinstance(game, ParticipationGame):
            accepted = game.verify_equilibrium(p)
        else:
            accepted = game.is_symmetric_equilibrium(p)
        return self._verdict(
            accepted,
            f"indifference identity holds at p={p}" if accepted
            else f"indifference identity fails at p={p}",
        )


class OnlineLinkProcedure(VerificationProcedure):
    """Sect. 6: recompute the inventor's deterministic link suggestion."""

    def supports(self, advice: Advice) -> bool:
        return (
            advice.proof_format is ProofFormat.DETERMINISTIC_RECOMPUTATION
            and isinstance(advice.proof, dict)
            and advice.proof.get("kind") == "parallel-links"
        )

    def verify(self, game, advice, context) -> Verdict:
        proof = advice.proof
        try:
            ok = verify_suggestion(
                loads=list(proof["loads"]),
                own_load=proof["own_load"],
                expected_load=proof["expected_load"],
                future_count=int(proof["future_count"]),
                suggested=int(advice.suggestion),
            )
        except (TypeError, KeyError) as exc:
            return self._verdict(False, f"malformed recomputation inputs: {exc}")
        return self._verdict(
            ok,
            "suggestion matches the recomputed LPT assignment" if ok
            else "suggestion differs from the recomputed LPT assignment",
        )


class OnlineParticipationProcedure(VerificationProcedure):
    """Sect. 5 on-line: check the last firm's advice against its history."""

    def supports(self, advice: Advice) -> bool:
        return (
            advice.proof_format is ProofFormat.DETERMINISTIC_RECOMPUTATION
            and isinstance(advice.proof, dict)
            and advice.proof.get("kind") == "participation-online"
        )

    def verify(self, game, advice, context) -> Verdict:
        if not isinstance(game, ParticipationGame):
            return self._verdict(False, "on-line participation advice needs a "
                                        "participation game")
        if not isinstance(advice.suggestion, OnlineAdvice):
            return self._verdict(False, "suggestion is not an OnlineAdvice")
        try:
            prior = int(advice.proof["prior_participants"])
        except (TypeError, KeyError) as exc:
            return self._verdict(False, f"malformed history disclosure: {exc}")
        ok = verify_online_advice(game, prior, advice.suggestion)
        return self._verdict(
            ok,
            "advice is the best reply to the disclosed history" if ok
            else "advice is not a best reply to the disclosed history "
                 "(a flipped p would cause a loss)",
        )


class DominanceProcedure(VerificationProcedure):
    """Checks a dominant-strategy equilibrium by direct evaluation.

    The most expensive library entry: each player's action is compared
    against every alternative at *every* opponent profile (the
    complexity contrast Tadjouddine's NP-completeness result is about,
    here made concrete on explicit games).
    """

    def supports(self, advice: Advice) -> bool:
        return (
            advice.concept is SolutionConcept.DOMINANT_STRATEGY
            and advice.proof_format is ProofFormat.EMPTY_PROOF
        )

    def verify(self, game, advice, context) -> Verdict:
        from repro.equilibria.dominance import is_dominant_action

        try:
            profile = game.validate_profile(tuple(advice.suggestion))
        except Exception as exc:  # noqa: BLE001
            return self._verdict(False, f"malformed suggestion: {exc}")
        strict = bool(
            isinstance(advice.proof, dict) and advice.proof.get("strict", False)
        )
        for player in game.players():
            if not is_dominant_action(game, player, profile[player], strict=strict):
                return self._verdict(
                    False,
                    f"player {player}'s action {profile[player]} is not "
                    f"{'strictly ' if strict else ''}dominant",
                )
        return self._verdict(True, "dominant-strategy equilibrium verified")


class CorrelatedProcedure(VerificationProcedure):
    """Checks a correlated device's obedience constraints, exactly."""

    def supports(self, advice: Advice) -> bool:
        return (
            advice.concept is SolutionConcept.CORRELATED
            and advice.proof_format is ProofFormat.EMPTY_PROOF
        )

    def verify(self, game, advice, context) -> Verdict:
        from repro.errors import EquilibriumError, GameError
        from repro.equilibria.correlated import is_correlated_equilibrium

        suggestion = advice.suggestion
        if not isinstance(suggestion, dict):
            return self._verdict(False, "suggestion is not a profile distribution")
        try:
            dist = {tuple(k): to_fraction(v) for k, v in suggestion.items()}
            accepted = is_correlated_equilibrium(game, dist)
        except (EquilibriumError, GameError, TypeError) as exc:
            return self._verdict(False, f"malformed distribution: {exc}")
        return self._verdict(
            accepted,
            "obedience constraints hold" if accepted
            else "a recommendation admits a profitable deviation",
        )


class BayesNashProcedure(VerificationProcedure):
    """Checks a Bayes-Nash strategy profile on a Bayesian game."""

    def supports(self, advice: Advice) -> bool:
        return (
            advice.concept is SolutionConcept.BAYES_NASH
            and advice.proof_format is ProofFormat.EMPTY_PROOF
        )

    def verify(self, game, advice, context) -> Verdict:
        from repro.errors import GameError as _GameError
        from repro.games.bayesian import BayesianGame, is_bayes_nash

        if not isinstance(game, BayesianGame):
            return self._verdict(False, "Bayes-Nash advice needs a Bayesian game")
        try:
            strategies = tuple(tuple(s) for s in advice.suggestion)
            accepted = is_bayes_nash(game, strategies)
        except (_GameError, TypeError) as exc:
            return self._verdict(False, f"malformed strategy profile: {exc}")
        return self._verdict(
            accepted,
            "every type plays an interim best reply" if accepted
            else "some type has a profitable interim deviation",
        )


class SubgamePerfectProcedure(VerificationProcedure):
    """Checks subgame perfection via the one-shot-deviation principle."""

    def supports(self, advice: Advice) -> bool:
        return (
            advice.concept is SolutionConcept.SUBGAME_PERFECT
            and advice.proof_format is ProofFormat.EMPTY_PROOF
        )

    def verify(self, game, advice, context) -> Verdict:
        from repro.errors import GameError as _GameError
        from repro.games.extensive import ExtensiveGame, is_subgame_perfect

        if not isinstance(game, ExtensiveGame):
            return self._verdict(False, "subgame perfection needs an "
                                        "extensive-form game")
        suggestion = advice.suggestion
        if not isinstance(suggestion, dict):
            return self._verdict(False, "suggestion is not a node-action map")
        try:
            accepted = is_subgame_perfect(game, suggestion)
        except _GameError as exc:
            return self._verdict(False, f"malformed strategy: {exc}")
        return self._verdict(
            accepted,
            "optimal in every subgame" if accepted
            else "a one-shot deviation improves some subgame "
                 "(a non-credible threat)",
        )


class ByzantineProcedure(VerificationProcedure):
    """A dishonest verifier: inverts a wrapped procedure's verdicts.

    Used in tests and benches to show the majority out-voting a bad
    verifier and the reputation system punishing it.
    """

    def __init__(self, name: str, inner: VerificationProcedure):
        super().__init__(name)
        self._inner = inner

    def supports(self, advice: Advice) -> bool:
        return self._inner.supports(advice)

    def verify(self, game, advice, context) -> Verdict:
        verdict = self._inner.verify(game, advice, context)
        return self._verdict(
            not verdict.accepted,
            f"[byzantine inversion of: {verdict.reason}]",
            **verdict.cost,
        )


# ----------------------------------------------------------------------
# Registry and majority
# ----------------------------------------------------------------------


def standard_procedures() -> tuple[VerificationProcedure, ...]:
    """One of each honest procedure, under conventional vendor names."""
    return (
        CertificateProcedure("kernel-check"),
        EmptyProofProcedure("direct-evaluation"),
        P1Procedure("p1-supports"),
        P2Procedure("p2-private"),
        IndifferenceProcedure("eq5-indifference"),
        OnlineLinkProcedure("lpt-recompute"),
        OnlineParticipationProcedure("history-best-reply"),
        DominanceProcedure("dominance-sweep"),
        CorrelatedProcedure("obedience-check"),
        BayesNashProcedure("interim-best-reply"),
        SubgamePerfectProcedure("one-shot-deviation"),
    )


class VerifierRegistry:
    """Named verification procedures available to agents."""

    def __init__(self):
        self._procedures: dict[str, VerificationProcedure] = {}

    def add(self, procedure: VerificationProcedure) -> None:
        if procedure.name in self._procedures:
            raise ProtocolError(f"verifier {procedure.name!r} already registered")
        self._procedures[procedure.name] = procedure

    def get(self, name: str) -> VerificationProcedure:
        try:
            return self._procedures[name]
        except KeyError:
            raise ProtocolError(f"unknown verifier {name!r}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._procedures)

    def supporting(self, advice: Advice) -> tuple[VerificationProcedure, ...]:
        """All registered procedures able to check this advice."""
        return tuple(
            proc for proc in self._procedures.values() if proc.supports(advice)
        )


@dataclass(frozen=True)
class MajorityOutcome:
    """Aggregated verdicts: the trusted majority's decision."""

    accepted: bool
    verdicts: tuple[Verdict, ...]
    accept_votes: int
    reject_votes: int

    @property
    def unanimous(self) -> bool:
        return self.accept_votes == 0 or self.reject_votes == 0

    def dissenters(self) -> tuple[str, ...]:
        """Verifiers that voted against the majority."""
        return tuple(
            v.verifier for v in self.verdicts if v.accepted != self.accepted
        )


def majority_verdict(verdicts: Sequence[Verdict]) -> MajorityOutcome:
    """Strict-majority aggregation; ties reject (fail-safe)."""
    if not verdicts:
        raise ProtocolError("majority voting needs at least one verdict")
    accept = sum(1 for v in verdicts if v.accepted)
    reject = len(verdicts) - accept
    return MajorityOutcome(
        accepted=accept > reject,
        verdicts=tuple(verdicts),
        accept_votes=accept,
        reject_votes=reject,
    )
