"""Messages on the authority's bus.

Every inter-party communication in the framework — game publication,
advice requests, advice, verdicts — is an explicit :class:`Message` with
a canonical byte size, so experiments can account the framework's
communication overhead exactly (experiment E10).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError
from repro.interactive.transcripts import encode_value


@dataclass(frozen=True)
class Message:
    """One bus message.

    ``kind`` is a dotted protocol tag (e.g. ``"advice.request"``);
    ``payload`` must be JSON-able after Fraction encoding.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any
    sequence: int = 0

    def canonical_payload(self) -> str:
        try:
            return json.dumps(
                encode_value(self.payload), sort_keys=True, separators=(",", ":")
            )
        except Exception as exc:  # noqa: BLE001 - normalize to protocol error
            raise ProtocolError(f"unencodable payload in {self.kind}: {exc}") from exc

    def size_bytes(self) -> int:
        """Canonical payload size — what the bus charges."""
        return len(self.canonical_payload().encode("utf-8"))
