"""The rationality authority facade.

Owns the shared infrastructure of Fig. 1 — the bus, the verifier
registry, the reputation store, the audit log — plus the published games
and registered parties, and exposes the one-call consultation flow:

    authority = RationalityAuthority(seed=...)
    authority.register_verifiers(standard_procedures())
    authority.register_inventor(inventor)
    authority.register_agent(AuthorityAgent("jane", player_role=ROW))
    authority.publish_game(inventor.name, "g1", game)
    outcome = authority.consult("jane", "g1", privacy="private")

It also hosts the cross-check of Sect. 5 ("the players can cross-check
that the prover has sent the same probability p to each of them") and
the statistics audit hook of footnote 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.core.actors import AuthorityAgent, GameInventor
from repro.core.advice import Advice
from repro.core.audit import (
    EVENT_BATCH_CONSULTATION,
    EVENT_CROSS_CHECK,
    EVENT_GAME_PUBLISHED,
    EVENT_STATISTICS_AUDIT,
    AuditLog,
)
from repro.core.bus import MessageBus
from repro.core.registry import VerificationProcedure, VerifierRegistry
from repro.core.reputation import ReputationStore
from repro.core.session import ConsultationSession, SessionOutcome
from repro.crypto.signatures import KeyRegistry
from repro.errors import ProtocolError
from repro.games.base import Game
from repro.online.inventor_stats import SignedStatistic, audit_statistics
from repro.rng import make_rng


@dataclass(frozen=True)
class CrossCheckOutcome:
    """Result of the Sect. 5 same-p-for-everyone check."""

    consistent: bool
    probabilities: tuple[Fraction, ...]
    inventors: tuple[str, ...]


class RationalityAuthority:
    """The infrastructure tying inventors, agents and verifiers together."""

    AUTHORITY_NAME = "rationality-authority"

    def __init__(self, seed: int = 0):
        self._seed = seed
        self.bus = MessageBus()
        self.registry = VerifierRegistry()
        self.reputation = ReputationStore()
        self.audit = AuditLog()
        self.keys = KeyRegistry()
        self._games: dict[str, Game] = {}
        self._game_owner: dict[str, str] = {}
        self._inventors: dict[str, GameInventor] = {}
        self._agents: dict[str, AuthorityAgent] = {}
        self._session_counter = 0
        self.bus.register(self.AUTHORITY_NAME)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_inventor(self, inventor: GameInventor) -> None:
        if inventor.name in self._inventors:
            raise ProtocolError(f"inventor {inventor.name!r} already registered")
        self._inventors[inventor.name] = inventor
        self.bus.register(inventor.name)
        if not self.keys.is_registered(inventor.name):
            self.keys.register(inventor.name, rng=make_rng(self._seed, inventor.name))

    def register_agent(self, agent: AuthorityAgent) -> None:
        if agent.name in self._agents:
            raise ProtocolError(f"agent {agent.name!r} already registered")
        self._agents[agent.name] = agent
        self.bus.register(agent.name)

    def register_verifier(self, procedure: VerificationProcedure) -> None:
        self.registry.add(procedure)
        self.bus.register(procedure.name)
        self.reputation.ensure(procedure.name)

    def register_verifiers(self, procedures: Sequence[VerificationProcedure]) -> None:
        for procedure in procedures:
            self.register_verifier(procedure)

    # ------------------------------------------------------------------
    # Games
    # ------------------------------------------------------------------

    def publish_game(self, inventor_name: str, game_id: str, game: Game) -> None:
        if inventor_name not in self._inventors:
            raise ProtocolError(f"unknown inventor {inventor_name!r}")
        if game_id in self._games:
            raise ProtocolError(f"game {game_id!r} already published")
        self._games[game_id] = game
        self._game_owner[game_id] = inventor_name
        self.bus.send(
            inventor_name,
            self.AUTHORITY_NAME,
            "game.publish",
            {"game_id": game_id, "description": game.describe()},
        )
        self.audit.record(
            "-", inventor_name, EVENT_GAME_PUBLISHED,
            game_id=game_id, description=game.describe(),
        )

    def game(self, game_id: str) -> Game:
        try:
            return self._games[game_id]
        except KeyError:
            raise ProtocolError(f"unknown game {game_id!r}") from None

    def inventor_of(self, game_id: str) -> GameInventor:
        self.game(game_id)
        return self._inventors[self._game_owner[game_id]]

    # ------------------------------------------------------------------
    # Consultation
    # ------------------------------------------------------------------

    def open_session(self, agent_name: str, game_id: str) -> ConsultationSession:
        try:
            agent = self._agents[agent_name]
        except KeyError:
            raise ProtocolError(f"unknown agent {agent_name!r}") from None
        game = self.game(game_id)
        self._session_counter += 1
        session_id = f"session-{self._session_counter:04d}"
        rng = make_rng(self._seed, session_id)
        return ConsultationSession(
            session_id=session_id,
            bus=self.bus,
            registry=self.registry,
            reputation=self.reputation,
            audit=self.audit,
            game_id=game_id,
            game=game,
            agent=agent,
            rng=rng,
        )

    def consult(
        self, agent_name: str, game_id: str, privacy: str = "open"
    ) -> SessionOutcome:
        """The full flow: request, verify with the majority, conclude."""
        session = self.open_session(agent_name, game_id)
        inventor = self.inventor_of(game_id)
        session.request_advice(inventor, privacy=privacy)
        session.verify()
        return session.conclude()

    def consult_many(
        self,
        agent_name: str,
        game_ids: Sequence[str],
        privacy: str = "open",
    ) -> tuple[SessionOutcome, ...]:
        """Batch consultation: one call, a stream of games.

        Outcomes are identical to calling :meth:`consult` per game, in
        the same order — batching is a cost optimization, never a
        semantic one.  The games are grouped by owning inventor and each
        inventor's hard solves are pre-run through its
        :meth:`~repro.core.actors.GameInventor.prepare_games` hook, so a
        sharding inventor pays for its worker pool (and a caching one
        for its solver setup) once per batch instead of once per
        consultation.  Every session then proceeds through the usual
        advise → verify → conclude flow, with the resolved backend and
        executor recorded per advice in the audit log.
        """
        if not game_ids:
            return ()
        by_inventor: dict[str, list[str]] = {}
        for game_id in game_ids:
            inventor = self.inventor_of(game_id)  # validates the id
            by_inventor.setdefault(inventor.name, []).append(game_id)
        for inventor_name, ids in by_inventor.items():
            inventor = self._inventors[inventor_name]
            distinct: dict[str, Game] = {}
            for game_id in ids:
                distinct.setdefault(game_id, self._games[game_id])
            self.audit.record(
                "-", self.AUTHORITY_NAME, EVENT_BATCH_CONSULTATION,
                inventor=inventor_name,
                games=sorted(distinct),
                agent=agent_name,
            )
            inventor.prepare_games(list(distinct.items()))
        return tuple(
            self.consult(agent_name, game_id, privacy=privacy)
            for game_id in game_ids
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release every registered inventor's long-lived resources.

        Sharding inventors keep a worker pool open between solves (that
        is the batch amortization); the authority owns their lifecycle,
        so hosts should ``close()`` it — or use the authority as a
        context manager — when consultations are done.  Closing is
        idempotent and pools are recreated lazily on the next solve.
        """
        for inventor in self._inventors.values():
            inventor.close()

    def __enter__(self) -> "RationalityAuthority":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Sect. 5 cross-check and footnote-3 statistics audit
    # ------------------------------------------------------------------

    def cross_check_symmetric(self, advices: Sequence[Advice]) -> CrossCheckOutcome:
        """Check that every agent was advised the *same* probability p.

        Individually valid advices can still be mutually inconsistent
        when the game has several symmetric equilibria; the cross-check
        is the agents' only defence, and a failed one blames the
        inventor(s).
        """
        if not advices:
            raise ProtocolError("cross-check needs at least one advice")
        probabilities = tuple(Fraction(a.suggestion) for a in advices)
        inventors = tuple(sorted({a.inventor for a in advices if a.inventor}))
        consistent = len(set(probabilities)) == 1
        session_id = f"cross-check-{advices[0].game_id}"
        self.audit.record(
            session_id, self.AUTHORITY_NAME, EVENT_CROSS_CHECK,
            consistent=consistent,
            probabilities=[str(p) for p in probabilities],
        )
        if not consistent:
            for name in inventors:
                self.audit.blame_inventor(
                    session_id, name,
                    "sent different equilibrium probabilities to different agents",
                )
        return CrossCheckOutcome(
            consistent=consistent, probabilities=probabilities, inventors=inventors
        )

    def audit_published_statistics(
        self,
        inventor_name: str,
        records: Sequence[SignedStatistic],
        observed_loads: Sequence[float],
    ):
        """Footnote 3: hold the inventor responsible for its published stats."""
        findings = audit_statistics(self.keys, records, observed_loads)
        self.audit.record(
            f"stats-audit-{inventor_name}", inventor_name, EVENT_STATISTICS_AUDIT,
            findings=len(findings),
        )
        if findings:
            self.audit.blame_inventor(
                f"stats-audit-{inventor_name}", inventor_name,
                f"published statistics failed audit in {len(findings)} round(s)",
            )
        return findings
