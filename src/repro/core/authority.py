"""The rationality authority facade.

Owns the shared infrastructure of Fig. 1 — the bus, the verifier
registry, the reputation store, the audit log — plus the published games
and registered parties, and exposes the one-call consultation flow:

    authority = RationalityAuthority(seed=...)
    authority.register_verifiers(standard_procedures())
    authority.register_inventor(inventor)
    authority.register_agent(AuthorityAgent("jane", player_role=ROW))
    authority.publish_game(inventor.name, "g1", game)
    outcome = authority.consult("jane", "g1", privacy="private")

It also hosts the cross-check of Sect. 5 ("the players can cross-check
that the prover has sent the same probability p to each of them") and
the statistics audit hook of footnote 3.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.core.actors import AuthorityAgent, GameInventor
from repro.core.advice import Advice
from repro.core.audit import AuditLog
from repro.core.audit_events import (
    EVENT_CROSS_CHECK,
    EVENT_GAME_PUBLISHED,
    EVENT_STATISTICS_AUDIT,
)
from repro.core.bus import MessageBus
from repro.core.registry import VerificationProcedure, VerifierRegistry
from repro.core.reputation import ReputationStore
from repro.core.session import ConsultationSession, SessionOutcome
from repro.crypto.signatures import KeyRegistry
from repro.errors import ProtocolError
from repro.games.base import Game
from repro.online.inventor_stats import SignedStatistic, audit_statistics
from repro.rng import make_rng


@dataclass(frozen=True)
class CrossCheckOutcome:
    """Result of the Sect. 5 same-p-for-everyone check."""

    consistent: bool
    probabilities: tuple[Fraction, ...]
    inventors: tuple[str, ...]


class RationalityAuthority:
    """The infrastructure tying inventors, agents and verifiers together."""

    AUTHORITY_NAME = "rationality-authority"

    def __init__(self, seed: int = 0):
        self._seed = seed
        self.bus = MessageBus()
        self.registry = VerifierRegistry()
        self.reputation = ReputationStore()
        self.audit = AuditLog()
        self.keys = KeyRegistry()
        self._games: dict[str, Game] = {}
        self._game_owner: dict[str, str] = {}
        self._inventors: dict[str, GameInventor] = {}
        self._agents: dict[str, AuthorityAgent] = {}
        self._session_counter = 0
        self._service = None  # lazily created AuthorityService
        self._service_lock = threading.Lock()
        self.bus.register(self.AUTHORITY_NAME)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_inventor(self, inventor: GameInventor) -> None:
        if inventor.name in self._inventors:
            raise ProtocolError(f"inventor {inventor.name!r} already registered")
        self._inventors[inventor.name] = inventor
        self.bus.register(inventor.name)
        if not self.keys.is_registered(inventor.name):
            self.keys.register(inventor.name, rng=make_rng(self._seed, inventor.name))

    def register_agent(self, agent: AuthorityAgent) -> None:
        if agent.name in self._agents:
            raise ProtocolError(f"agent {agent.name!r} already registered")
        self._agents[agent.name] = agent
        self.bus.register(agent.name)

    def register_verifier(self, procedure: VerificationProcedure) -> None:
        self.registry.add(procedure)
        self.bus.register(procedure.name)
        self.reputation.ensure(procedure.name)

    def register_verifiers(self, procedures: Sequence[VerificationProcedure]) -> None:
        for procedure in procedures:
            self.register_verifier(procedure)

    # ------------------------------------------------------------------
    # Games
    # ------------------------------------------------------------------

    def publish_game(self, inventor_name: str, game_id: str, game: Game) -> None:
        if inventor_name not in self._inventors:
            raise ProtocolError(f"unknown inventor {inventor_name!r}")
        if game_id in self._games:
            raise ProtocolError(f"game {game_id!r} already published")
        self._games[game_id] = game
        self._game_owner[game_id] = inventor_name
        self.bus.send(
            inventor_name,
            self.AUTHORITY_NAME,
            "game.publish",
            {"game_id": game_id, "description": game.describe()},
        )
        self.audit.record(
            "-", inventor_name, EVENT_GAME_PUBLISHED,
            game_id=game_id, description=game.describe(),
        )

    def game(self, game_id: str) -> Game:
        try:
            return self._games[game_id]
        except KeyError:
            raise ProtocolError(f"unknown game {game_id!r}") from None

    def inventor_of(self, game_id: str) -> GameInventor:
        self.game(game_id)
        return self._inventors[self._game_owner[game_id]]

    def inventor_named(self, name: str) -> GameInventor:
        try:
            return self._inventors[name]
        except KeyError:
            raise ProtocolError(f"unknown inventor {name!r}") from None

    @property
    def inventors(self) -> tuple[GameInventor, ...]:
        """Every registered inventor (the service attaches caches here)."""
        return tuple(self._inventors.values())

    def agent(self, name: str) -> AuthorityAgent:
        try:
            return self._agents[name]
        except KeyError:
            raise ProtocolError(f"unknown agent {name!r}") from None

    # ------------------------------------------------------------------
    # Consultation
    # ------------------------------------------------------------------

    def open_session(self, agent_name: str, game_id: str) -> ConsultationSession:
        agent = self.agent(agent_name)
        game = self.game(game_id)
        self._session_counter += 1
        session_id = f"session-{self._session_counter:04d}"
        rng = make_rng(self._seed, session_id)
        return ConsultationSession(
            session_id=session_id,
            bus=self.bus,
            registry=self.registry,
            reputation=self.reputation,
            audit=self.audit,
            game_id=game_id,
            game=game,
            agent=agent,
            rng=rng,
        )

    @property
    def service(self):
        """The async, future-based consultation surface over this authority.

        Created lazily (one
        :class:`~repro.service.service.AuthorityService` per authority,
        with a fresh cross-run
        :class:`~repro.service.cache.SolveCache` attached to every
        cacheable inventor).  Hosts that want different service
        parameters — a shared cache, off-path verifier threads —
        construct their own ``AuthorityService(authority, ...)``
        instead; the synchronous :meth:`consult` / :meth:`consult_many`
        shims always use this default instance.
        """
        with self._service_lock:
            if self._service is None:
                from repro.service.cache import SolveCache
                from repro.service.service import AuthorityService

                # The default service keeps the synchronous shims
                # strictly reproducible: exact-fingerprint hits only
                # (deterministic solvers make those bit-identical to a
                # fresh solve), no near-repeat support hints — on any
                # game with several equilibria a hint may settle on a
                # different (equally exact) equilibrium than cold
                # enumeration order, which a behavior-identical shim
                # must not do.
                self._service = AuthorityService(
                    self, solve_cache=SolveCache(use_hints=False)
                )
        return self._service

    def consult(
        self, agent_name: str, game_id: str, privacy: str = "open"
    ) -> SessionOutcome:
        """The full flow: request, verify with the majority, conclude.

        .. deprecated:: PR 3
            This is a thin synchronous shim over the consultation
            service — ``self.service.submit(...).result()`` — kept
            behavior-identical for existing hosts.  New code should use
            :attr:`service` directly (``submit`` / ``submit_many`` for
            futures, ``async_consult`` under asyncio) to get admission
            queueing, off-path verification and cache telemetry.
        """
        return self.service.submit(agent_name, game_id, privacy=privacy).result()

    def consult_many(
        self,
        agent_name: str,
        game_ids: Sequence[str],
        privacy: str = "open",
    ) -> tuple[SessionOutcome, ...]:
        """Batch consultation: one call, a stream of games.

        Outcomes are identical to calling :meth:`consult` per game, in
        the same order — batching is a cost optimization, never a
        semantic one.  The games are grouped by owning inventor and each
        inventor's hard solves are pre-run through its
        :meth:`~repro.core.actors.GameInventor.prepare_games` hook, so a
        sharding inventor pays for its worker pool (and a caching one
        for its solver setup) once per batch instead of once per
        consultation.  Every session then proceeds through the usual
        advise → verify → conclude flow, with the resolved backend,
        executor and cache state recorded per advice in the audit log.

        .. deprecated:: PR 3
            Like :meth:`consult`, this is a synchronous shim — one
            atomic :meth:`~repro.service.service.AuthorityService
            .submit_many` batch, drained inline — kept
            behavior-identical.  Prefer the service API for new code.
        """
        futures = self.service.submit_many(agent_name, game_ids, privacy=privacy)
        return tuple(future.result() for future in futures)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release every registered inventor's long-lived resources.

        Sharding inventors keep a worker pool open between solves (that
        is the batch amortization); the authority owns their lifecycle,
        so hosts should ``close()`` it — or use the authority as a
        context manager — when consultations are done.  Closing is
        idempotent, never final: pools are recreated lazily on the next
        solve, and every call releases the pools of *all currently
        registered* inventors — including ones registered (or warmed
        up) after an earlier ``close()``.  The consultation service is
        closed first so its queue drains and its verifier pool is
        released before the inventors' screening pools go away.
        """
        if self._service is not None:
            self._service.close()
        for inventor in self._inventors.values():
            inventor.close()

    def __enter__(self) -> "RationalityAuthority":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Sect. 5 cross-check and footnote-3 statistics audit
    # ------------------------------------------------------------------

    def cross_check_symmetric(self, advices: Sequence[Advice]) -> CrossCheckOutcome:
        """Check that every agent was advised the *same* probability p.

        Individually valid advices can still be mutually inconsistent
        when the game has several symmetric equilibria; the cross-check
        is the agents' only defence, and a failed one blames the
        inventor(s).
        """
        if not advices:
            raise ProtocolError("cross-check needs at least one advice")
        probabilities = tuple(Fraction(a.suggestion) for a in advices)
        inventors = tuple(sorted({a.inventor for a in advices if a.inventor}))
        consistent = len(set(probabilities)) == 1
        session_id = f"cross-check-{advices[0].game_id}"
        self.audit.record(
            session_id, self.AUTHORITY_NAME, EVENT_CROSS_CHECK,
            consistent=consistent,
            probabilities=[str(p) for p in probabilities],
        )
        if not consistent:
            for name in inventors:
                self.audit.blame_inventor(
                    session_id, name,
                    "sent different equilibrium probabilities to different agents",
                )
        return CrossCheckOutcome(
            consistent=consistent, probabilities=probabilities, inventors=inventors
        )

    def audit_published_statistics(
        self,
        inventor_name: str,
        records: Sequence[SignedStatistic],
        observed_loads: Sequence[float],
    ):
        """Footnote 3: hold the inventor responsible for its published stats."""
        findings = audit_statistics(self.keys, records, observed_loads)
        self.audit.record(
            f"stats-audit-{inventor_name}", inventor_name, EVENT_STATISTICS_AUDIT,
            findings=len(findings),
        )
        if findings:
            self.audit.blame_inventor(
                f"stats-audit-{inventor_name}", inventor_name,
                f"published statistics failed audit in {len(findings)} round(s)",
            )
        return findings
