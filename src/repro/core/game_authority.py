"""The game-authority compliance monitor.

The rationality authority "can also cooperate with the game authority
proposed in [9, 10] that guarantees that the agents employ the strategy
equilibrium by following the game rules."  This module is that
cooperation hook: once advice is adopted, the monitor watches the actions
actually played and reports violations — out-of-range actions, or
deviations from the adopted strategy — to the audit log, blaming the
agent (the operationalized Ron/Norton anecdote).

The monitor is self-stabilizing in the sense of [9, 10]'s middleware: its
observation state can be reset at any time (:meth:`resync`) and it
rebuilds a consistent view from subsequent observations alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.audit import AuditLog
from repro.core.audit_events import EVENT_RULE_VIOLATION
from repro.errors import ProtocolError
from repro.games.base import Game
from repro.games.profiles import MixedProfile


@dataclass(frozen=True)
class ComplianceExpectation:
    """What an agent committed to when adopting advice.

    ``strategy`` is a pure action (int), a pure profile (the agent's own
    entry is used), or a mixed distribution (any supported action
    complies).
    """

    agent_name: str
    player_index: int
    strategy: Any


@dataclass(frozen=True)
class Violation:
    """One observed rule violation."""

    agent_name: str
    player_index: int
    action: int
    reason: str


class GameAuthorityMonitor:
    """Watches played actions against the game rules and adopted advice."""

    def __init__(self, game: Game, audit: AuditLog, session_id: str):
        self._game = game
        self._audit = audit
        self._session_id = session_id
        self._expectations: dict[int, ComplianceExpectation] = {}
        self._violations: list[Violation] = []

    def expect(self, expectation: ComplianceExpectation) -> None:
        """Register an adopted strategy for one player."""
        index = expectation.player_index
        if not 0 <= index < self._game.num_players:
            raise ProtocolError(f"player index {index} out of range")
        self._expectations[index] = expectation

    def observe(self, player_index: int, action: int) -> Violation | None:
        """Check one played action; records and returns any violation."""
        if not 0 <= player_index < self._game.num_players:
            raise ProtocolError(f"player index {player_index} out of range")
        violation = self._check(player_index, action)
        if violation is not None:
            self._violations.append(violation)
            self._audit.record(
                self._session_id,
                violation.agent_name,
                EVENT_RULE_VIOLATION,
                player=player_index,
                action=action,
                reason=violation.reason,
            )
            self._audit.blame_agent(
                self._session_id, violation.agent_name, violation.reason
            )
        return violation

    def _check(self, player_index: int, action: int) -> Violation | None:
        expectation = self._expectations.get(player_index)
        agent_name = expectation.agent_name if expectation else f"player-{player_index}"
        if not 0 <= action < self._game.num_actions(player_index):
            return Violation(
                agent_name=agent_name,
                player_index=player_index,
                action=action,
                reason=f"action {action} violates the game rules "
                       f"(valid range is 0..{self._game.num_actions(player_index) - 1})",
            )
        if expectation is None:
            return None
        strategy = expectation.strategy
        if isinstance(strategy, MixedProfile):
            allowed = strategy.support(player_index)
            if action not in allowed:
                return Violation(
                    agent_name=agent_name,
                    player_index=player_index,
                    action=action,
                    reason=f"action {action} is outside the adopted support {allowed}",
                )
            return None
        if isinstance(strategy, tuple):
            expected = strategy[player_index]
        else:
            expected = int(strategy)
        if action != expected:
            return Violation(
                agent_name=agent_name,
                player_index=player_index,
                action=action,
                reason=f"action {action} deviates from the adopted strategy {expected}",
            )
        return None

    @property
    def violations(self) -> tuple[Violation, ...]:
        return tuple(self._violations)

    def resync(self) -> None:
        """Self-stabilization hook: drop all observation state.

        Expectations persist (they are commitments, not observations);
        recorded violations are cleared so the monitor can converge to a
        consistent view after arbitrary state corruption.
        """
        self._violations.clear()
