"""The consultation session: one agent, one game, one advice, one verdict.

A session walks the Fig. 1 flow as an explicit state machine::

    CREATED -> ADVISED -> VERIFIED -> CLOSED

driving the bus (who said what to whom, in bytes), the verifier registry
(which procedures ran), the reputation store (who agreed with the
majority) and the audit log (what to blame on whom).  Driving it out of
order raises :class:`ProtocolError` — protocol order is part of the
framework's guarantees.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Any

from repro.core.actors import AdvicePackage, AuthorityAgent, GameInventor
from repro.core.advice import Advice, describe_advice
from repro.core.audit import AuditLog
from repro.core.audit_events import (
    EVENT_ADVICE_ADOPTED,
    EVENT_ADVICE_DELIVERED,
    EVENT_ADVICE_REJECTED,
    EVENT_ADVICE_REQUESTED,
    EVENT_MAJORITY,
    EVENT_VERDICT,
)
from repro.core.bus import MessageBus
from repro.core.registry import (
    MajorityOutcome,
    VerificationContext,
    VerifierRegistry,
    majority_verdict,
)
from repro.core.reputation import ReputationStore
from repro.errors import ProtocolError
from repro.games.base import Game
from repro.games.profiles import MixedProfile
from repro.interactive.p1 import P1Announcement
from repro.online.participation_online import OnlineAdvice

_CREATED = "created"
_ADVISED = "advised"
_VERIFIED = "verified"
_CLOSED = "closed"


def advice_wire_summary(advice: Advice) -> dict[str, Any]:
    """A JSON-able summary of an advice for bus transport.

    Live prover handles never cross the bus; interactive proofs are
    summarized by format, matching the paper's model where the proof
    *interaction* happens between verifier and prover directly.
    """
    suggestion: Any = advice.suggestion
    if isinstance(suggestion, MixedProfile):
        suggestion = [list(row) for row in suggestion.distributions]
    elif isinstance(suggestion, OnlineAdvice):
        suggestion = {
            "probability": suggestion.probability,
            "expected_gain": suggestion.expected_gain,
        }
    elif isinstance(suggestion, tuple):
        suggestion = list(suggestion)
    proof: Any = advice.proof
    if isinstance(proof, P1Announcement):
        proof = {
            "row_support": list(proof.row_support),
            "column_support": list(proof.column_support),
        }
    return {
        "game_id": advice.game_id,
        "agent": advice.agent,
        "concept": advice.concept.value,
        "proof_format": advice.proof_format.value,
        "suggestion": suggestion,
        "proof": proof,
        "backend": advice.backend,
        "executor": advice.executor,
        # cache state is protocol-relevant (a verifier may price a hit
        # differently) and deterministic; wall times (solve_ms and
        # verify_ms alike) are telemetry and deliberately NOT on the
        # wire — the bus accounts communication bytes exactly, and a
        # timing float would make the byte counts vary run to run.
        # Timings live on the Advice itself and in the audit log.
        "cache": advice.cache,
    }


@dataclass(frozen=True)
class SessionOutcome:
    """The caller-facing result of a completed session."""

    session_id: str
    advice: Advice
    majority: MajorityOutcome
    adopted: bool
    concept_notice: str


class ConsultationSession:
    """One advice round-trip through the rationality authority."""

    def __init__(
        self,
        session_id: str,
        bus: MessageBus,
        registry: VerifierRegistry,
        reputation: ReputationStore,
        audit: AuditLog,
        game_id: str,
        game: Game,
        agent: AuthorityAgent,
        rng: random.Random,
    ):
        self.session_id = session_id
        self._bus = bus
        self._registry = registry
        self._reputation = reputation
        self._audit = audit
        self._game_id = game_id
        self._game = game
        self._agent = agent
        self._rng = rng
        self._state = _CREATED
        self._package: AdvicePackage | None = None
        self._majority: MajorityOutcome | None = None
        self._verify_ms: float | None = None

    # ------------------------------------------------------------------
    # Phase 1: advice
    # ------------------------------------------------------------------

    def request_advice(
        self, inventor: GameInventor, privacy: str = "open"
    ) -> Advice:
        self._require_state(_CREATED, "request_advice")
        if privacy not in ("open", "private"):
            raise ProtocolError(f"unknown privacy mode {privacy!r}")
        self._bus.send(
            self._agent.name,
            inventor.name,
            "advice.request",
            {"game_id": self._game_id, "agent": self._agent.player_role,
             "privacy": privacy},
        )
        self._audit.record(
            self.session_id, self._agent.name, EVENT_ADVICE_REQUESTED,
            game_id=self._game_id, privacy=privacy,
        )
        package = inventor.advise(
            self._game_id, self._game, self._agent.player_role, privacy
        )
        self._bus.send(
            inventor.name,
            self._agent.name,
            "advice.delivery",
            advice_wire_summary(package.advice),
        )
        self._audit.record(
            self.session_id, inventor.name, EVENT_ADVICE_DELIVERED,
            game_id=self._game_id,
            concept=package.advice.concept.value,
            proof_format=package.advice.proof_format.value,
            backend=package.advice.backend,
            executor=package.advice.executor,
            cache=package.advice.cache,
            solve_ms=package.advice.solve_ms,
        )
        self._package = package
        self._state = _ADVISED
        return package.advice

    # ------------------------------------------------------------------
    # Phase 2: verification
    # ------------------------------------------------------------------

    def verify(self) -> MajorityOutcome:
        self._require_state(_ADVISED, "verify")
        package = self._package
        assert package is not None
        advice = package.advice
        verify_started = time.perf_counter()

        supporting = self._registry.supporting(advice)
        if not supporting:
            raise ProtocolError(
                f"no registered verifier can check {advice.proof_format.value} proofs"
            )
        chosen_names = self._reputation.select_top(
            [proc.name for proc in supporting],
            min(self._agent.policy.verifier_count, len(supporting)),
        )
        verdicts = []
        for name in chosen_names:
            procedure = self._registry.get(name)
            context = VerificationContext(
                rng=self._rng, prover=package.prover, backend=advice.backend,
                executor=advice.executor, cache=advice.cache,
            )
            try:
                verdict = procedure.verify(self._game, advice, context)
            except Exception as exc:  # noqa: BLE001 - a crashing verifier
                # must not take the session down; it simply fails to
                # establish the proof (and the audit shows why).
                from repro.core.registry import Verdict

                verdict = Verdict(
                    verifier=name,
                    accepted=False,
                    reason=f"verifier crashed: {type(exc).__name__}: {exc}",
                )
            self._bus.send(
                name,
                self._agent.name,
                EVENT_VERDICT,
                {"accepted": verdict.accepted, "reason": verdict.reason},
            )
            self._audit.record(
                self.session_id, name, EVENT_VERDICT,
                accepted=verdict.accepted, reason=verdict.reason,
            )
            verdicts.append(verdict)

        majority = majority_verdict(verdicts)
        # The verification phase's wall time: every selected verifier's
        # run plus the vote.  This is the cheap side of the paper's
        # asymmetry, priced next to Advice.solve_ms in the audit trail.
        self._verify_ms = (time.perf_counter() - verify_started) * 1000.0
        self._audit.record(
            self.session_id, self._agent.name, EVENT_MAJORITY,
            accepted=majority.accepted,
            accept_votes=majority.accept_votes,
            reject_votes=majority.reject_votes,
            verify_ms=self._verify_ms,
        )
        self._reputation.update_from_outcome(majority)
        for dissenter in majority.dissenters():
            self._audit.blame_verifier(
                self.session_id, dissenter, "voted against the trusted majority"
            )
        if not majority.accepted and advice.inventor:
            self._audit.blame_inventor(
                self.session_id,
                advice.inventor,
                f"advice failed verification: "
                f"{next((v.reason for v in verdicts if not v.accepted), 'rejected')}",
            )
        self._majority = majority
        self._state = _VERIFIED
        return majority

    # ------------------------------------------------------------------
    # Phase 3: adoption
    # ------------------------------------------------------------------

    def conclude(self) -> SessionOutcome:
        self._require_state(_VERIFIED, "conclude")
        package = self._package
        majority = self._majority
        assert package is not None and majority is not None
        adopted = majority.accepted and self._agent.policy.adopt_on_majority
        event = EVENT_ADVICE_ADOPTED if adopted else EVENT_ADVICE_REJECTED
        self._audit.record(
            self.session_id, self._agent.name, event,
            game_id=self._game_id, accepted=majority.accepted,
        )
        self._state = _CLOSED
        # The outcome's advice carries the measured verification time —
        # the delivered advice could not (it predates verification).
        advice = package.advice
        if self._verify_ms is not None:
            advice = dataclasses.replace(advice, verify_ms=self._verify_ms)
        return SessionOutcome(
            session_id=self.session_id,
            advice=advice,
            majority=majority,
            adopted=adopted,
            concept_notice=describe_advice(advice),
        )

    # ------------------------------------------------------------------

    def _require_state(self, expected: str, operation: str) -> None:
        if self._state != expected:
            raise ProtocolError(
                f"{operation} requires session state {expected!r}, "
                f"but the session is {self._state!r}"
            )
