"""Verifier reputations.

"The reputation of the veriﬁers can be updated according to the
(majority of their) results" — each session, verifiers that voted with
the majority gain, dissenters lose.  Scores are Beta-mean estimates
(successes+1)/(total+2), so fresh verifiers start at 1/2 and confidence
grows with history.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import ProtocolError


@dataclass
class ReputationScore:
    """Agreement history of one verifier."""

    agreements: int = 0
    disagreements: int = 0

    @property
    def total(self) -> int:
        return self.agreements + self.disagreements

    @property
    def score(self) -> Fraction:
        """Beta-mean reliability estimate in (0, 1)."""
        return Fraction(self.agreements + 1, self.total + 2)


class ReputationStore:
    """Scores per verifier, updated from majority outcomes.

    Vote recording is serialized by a lock so concurrent verification
    sessions (the consultation service's off-path verifiers) cannot
    lose updates.
    """

    def __init__(self):
        self._scores: dict[str, ReputationScore] = {}
        self._lock = threading.Lock()

    def ensure(self, name: str) -> ReputationScore:
        with self._lock:
            return self._scores.setdefault(name, ReputationScore())

    def score(self, name: str) -> Fraction:
        return self.ensure(name).score

    def record_vote(self, name: str, agreed_with_majority: bool) -> None:
        entry = self.ensure(name)
        with self._lock:
            if agreed_with_majority:
                entry.agreements += 1
            else:
                entry.disagreements += 1

    def update_from_outcome(self, outcome) -> None:
        """Apply one session's majority outcome to all participating verifiers."""
        for verdict in outcome.verdicts:
            self.record_vote(verdict.verifier, verdict.accepted == outcome.accepted)

    def ranking(self) -> tuple[tuple[str, Fraction], ...]:
        """Verifiers ordered by reputation, best first (name tie-break)."""
        return tuple(
            sorted(
                ((name, entry.score) for name, entry in self._scores.items()),
                key=lambda pair: (-pair[1], pair[0]),
            )
        )

    def select_top(self, names, count: int) -> tuple[str, ...]:
        """The ``count`` most reputable among ``names`` (agents pick verifiers
        "according to their reputation")."""
        if count < 1:
            raise ProtocolError("must select at least one verifier")
        pool = sorted(names, key=lambda n: (-self.score(n), n))
        return tuple(pool[:count])
