"""Advice objects and the solution-concept library.

"The veriﬁers may use a library for the speciﬁcation of the solution
concepts and inform the user concerning the solution concept used and
the consequences of the choice."  :data:`CONCEPT_LIBRARY` is that
library; :class:`Advice` is the inventor's deliverable — a solution
concept, a suggested strategy, and a proof payload in one of the
supported proof formats (the Sect. 1 list: detailed logic proofs,
interactive proofs, or the empty proof that delegates evaluation to the
verifier procedure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError
from repro.linalg.backend import (
    EXECUTOR_NAMES,
    MODE_EXACT,
    MODE_FLOAT_CERTIFY,
    MODE_NUMPY,
)

#: Advice records the backend that actually ran, so "auto" (a request,
#: not a resolution) is deliberately not accepted here.
RESOLVED_BACKEND_MODES = (MODE_EXACT, MODE_FLOAT_CERTIFY, MODE_NUMPY)

#: What the cross-run solve cache did for this advice's hard step:
#: ``""`` — no cache attached; ``"hit"`` — the certified solution was
#: served straight from the cache (no search at all); ``"warm"`` — a
#: cached support hint resolved the game with one exact solve, skipping
#: the screen; ``"miss"`` — a full cold search ran (and populated the
#: cache).
CACHE_STATES = ("", "hit", "warm", "miss")


class SolutionConcept(enum.Enum):
    """The solution concepts the verifier library can speak about."""

    PURE_NASH = "pure-nash"
    MAXIMAL_PURE_NASH = "maximal-pure-nash"
    MINIMAL_PURE_NASH = "minimal-pure-nash"
    MIXED_NASH = "mixed-nash"
    SYMMETRIC_MIXED_NASH = "symmetric-mixed-nash"
    ONLINE_BEST_REPLY = "online-best-reply"
    DOMINANT_STRATEGY = "dominant-strategy"
    CORRELATED = "correlated"
    BAYES_NASH = "bayes-nash"
    SUBGAME_PERFECT = "subgame-perfect"


class ProofFormat(enum.Enum):
    """How the advice's optimality is to be established."""

    CERTIFICATE = "certificate"          # Fig. 2-style explicit proof object
    EMPTY_PROOF = "empty-proof"          # verifier evaluates directly (NTM style)
    INTERACTIVE_P1 = "interactive-p1"    # Fig. 3 support-revealing proof
    INTERACTIVE_P2 = "interactive-p2"    # Fig. 4 private proof
    INDIFFERENCE_IDENTITY = "indifference-identity"  # Eq. (5) check
    DETERMINISTIC_RECOMPUTATION = "deterministic-recomputation"  # Sect. 6 advice


@dataclass(frozen=True)
class ConceptInfo:
    """Library entry: what the concept means and what adopting it entails."""

    concept: SolutionConcept
    description: str
    consequences: str
    compatible_formats: tuple[ProofFormat, ...]


CONCEPT_LIBRARY: dict[SolutionConcept, ConceptInfo] = {
    SolutionConcept.PURE_NASH: ConceptInfo(
        concept=SolutionConcept.PURE_NASH,
        description="A pure strategy profile where no player gains by a "
        "unilateral deviation.",
        consequences="Stable against individual deviations only; may not "
        "exist, and other equilibria may pay everyone more.",
        compatible_formats=(ProofFormat.CERTIFICATE, ProofFormat.EMPTY_PROOF),
    ),
    SolutionConcept.MAXIMAL_PURE_NASH: ConceptInfo(
        concept=SolutionConcept.MAXIMAL_PURE_NASH,
        description="A pure Nash equilibrium not payoff-dominated by any "
        "other pure Nash equilibrium.",
        consequences="No other pure equilibrium is weakly better for "
        "everyone; incomparable equilibria may still exist.",
        compatible_formats=(ProofFormat.CERTIFICATE,),
    ),
    SolutionConcept.MINIMAL_PURE_NASH: ConceptInfo(
        concept=SolutionConcept.MINIMAL_PURE_NASH,
        description="A pure Nash equilibrium not payoff-dominating any "
        "other pure Nash equilibrium (footnote 1's dual notion).",
        consequences="A most-pessimistic stable point; useful as a "
        "worst-case guarantee.",
        compatible_formats=(ProofFormat.CERTIFICATE,),
    ),
    SolutionConcept.MIXED_NASH: ConceptInfo(
        concept=SolutionConcept.MIXED_NASH,
        description="A profile of independent randomizations where every "
        "supported action is a best reply.",
        consequences="Payoffs hold in expectation; realized outcomes vary. "
        "Verification can avoid revealing the other side's play (P2).",
        compatible_formats=(
            ProofFormat.INTERACTIVE_P1,
            ProofFormat.INTERACTIVE_P2,
            ProofFormat.EMPTY_PROOF,
        ),
    ),
    SolutionConcept.SYMMETRIC_MIXED_NASH: ConceptInfo(
        concept=SolutionConcept.SYMMETRIC_MIXED_NASH,
        description="Every player randomizes identically (probability p of "
        "the designated action); exists for symmetric games by Nash's theorem.",
        consequences="Multiple symmetric equilibria may exist - agents "
        "must cross-check they all received the same p.",
        compatible_formats=(ProofFormat.INDIFFERENCE_IDENTITY,),
    ),
    SolutionConcept.ONLINE_BEST_REPLY: ConceptInfo(
        concept=SolutionConcept.ONLINE_BEST_REPLY,
        description="The action that maximizes the agent's payoff given the "
        "disclosed history and the inventor's statistics.",
        consequences="Optimality is relative to the inventor's statistical "
        "model of future arrivals; the advice reveals information about "
        "the game's history.",
        compatible_formats=(ProofFormat.DETERMINISTIC_RECOMPUTATION,),
    ),
    SolutionConcept.DOMINANT_STRATEGY: ConceptInfo(
        concept=SolutionConcept.DOMINANT_STRATEGY,
        description="Every player's action is a best reply against *every* "
        "opponent profile, not just the equilibrium one.",
        consequences="The strongest advice: rational regardless of what "
        "others do; rarely exists, and verification quantifies over the "
        "whole opponent profile space.",
        compatible_formats=(ProofFormat.EMPTY_PROOF, ProofFormat.CERTIFICATE),
    ),
    SolutionConcept.CORRELATED: ConceptInfo(
        concept=SolutionConcept.CORRELATED,
        description="A distribution over pure profiles such that following "
        "the device's recommendation is optimal given the others follow it.",
        consequences="Requires the agents to accept the advised signal "
        "device; unlike Aumann's trusted mediator, the device's incentive "
        "constraints are verified, not assumed.",
        compatible_formats=(ProofFormat.EMPTY_PROOF,),
    ),
    SolutionConcept.BAYES_NASH: ConceptInfo(
        concept=SolutionConcept.BAYES_NASH,
        description="In a game of incomplete information: every type of "
        "every player plays an interim best reply under the common prior.",
        consequences="Optimality is in expectation over the other players' "
        "types; verification is polynomial in the explicit game "
        "(Tadjouddine).",
        compatible_formats=(ProofFormat.EMPTY_PROOF,),
    ),
    SolutionConcept.SUBGAME_PERFECT: ConceptInfo(
        concept=SolutionConcept.SUBGAME_PERFECT,
        description="In a sequential game: the plan is optimal in every "
        "subgame, not only on the equilibrium path (Guerin).",
        consequences="Rules out non-credible threats; verified node by "
        "node via the one-shot-deviation principle, linear in the tree.",
        compatible_formats=(ProofFormat.EMPTY_PROOF,),
    ),
}


@dataclass(frozen=True)
class Advice:
    """The inventor's deliverable for one agent.

    ``suggestion`` is concept-dependent: a pure profile (tuple of ints),
    a :class:`MixedProfile`, a symmetric probability (Fraction), or an
    action/link index for on-line advice.  ``proof`` is the format-
    dependent payload (an encoded certificate, an equilibrium for the
    interactive provers, the claimed p, or the inputs of a deterministic
    recomputation).

    ``backend`` records which numeric search mode actually produced the
    suggestion — ``"exact"``, ``"float+certify"`` or ``"numpy"``; an
    "auto" *policy* must be resolved to one of them before advising, so
    the audit trail always shows what ran.  ``executor`` likewise
    records how the search was executed — ``"serial"`` in process, or
    ``"sharded"`` across a worker pool (and if a sharded run fell back
    to in-process screening, the fallback is what gets recorded).
    Whatever the search mode, the suggestion's numbers are exact
    rationals — approximately-searching inventors certify before they
    advise, in their own process — so the proof obligations are
    identical in every mode.

    ``cache`` records what the cross-run solve cache did for the hard
    step (see :data:`CACHE_STATES`): a ``"hit"`` advice carries a
    previously certified solution and skipped the search entirely —
    the proof obligations are unchanged, which is why serving it is
    sound.  ``solve_ms`` is the inventor-measured wall time of the hard
    step in milliseconds (negative when the inventor did not measure),
    so the audit trail can price cache hits against cold solves.

    ``verify_ms`` is the session-measured wall time of the verification
    phase — every selected verifier's run plus the majority vote —
    in milliseconds (negative until a session has verified the advice;
    the advice an inventor hands over is necessarily unverified, so the
    field is populated on the *outcome's* advice).  Together with
    ``solve_ms`` it makes the paper's search-vs-verify asymmetry
    observable per consultation: the hard step's price next to the
    cheap check's.  Like ``solve_ms``, it is telemetry and stays off
    the wire summary (byte determinism).
    """

    game_id: str
    agent: int | str
    concept: SolutionConcept
    proof_format: ProofFormat
    suggestion: Any
    proof: Any
    inventor: str = ""
    backend: str = MODE_EXACT
    executor: str = "serial"
    cache: str = ""
    solve_ms: float = -1.0
    verify_ms: float = -1.0

    def __post_init__(self):
        info = CONCEPT_LIBRARY.get(self.concept)
        if info is None:
            raise ProtocolError(f"concept {self.concept} missing from the library")
        if self.proof_format not in info.compatible_formats:
            raise ProtocolError(
                f"{self.proof_format.value} proofs cannot establish "
                f"{self.concept.value}"
            )
        if self.backend not in RESOLVED_BACKEND_MODES:
            raise ProtocolError(
                f"unknown solver backend {self.backend!r}; "
                f"expected one of {RESOLVED_BACKEND_MODES}"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise ProtocolError(
                f"unknown search executor {self.executor!r}; "
                f"expected one of {EXECUTOR_NAMES}"
            )
        if self.cache not in CACHE_STATES:
            raise ProtocolError(
                f"unknown cache state {self.cache!r}; "
                f"expected one of {CACHE_STATES}"
            )

    def concept_info(self) -> ConceptInfo:
        """The library entry the verifier shows the user."""
        return CONCEPT_LIBRARY[self.concept]


def describe_advice(advice: Advice) -> str:
    """The verifier-side notice: concept, consequences, proof format."""
    info = advice.concept_info()
    notice = (
        f"Solution concept: {info.concept.value}. {info.description} "
        f"Consequences: {info.consequences} "
        f"Proof format: {advice.proof_format.value}."
    )
    if advice.backend != MODE_EXACT:
        notice += (
            f" Solver backend: {advice.backend} (search was approximate; "
            f"the suggestion itself is exact and certified)."
        )
    if advice.executor != "serial":
        notice += (
            f" Search executor: {advice.executor} (screening was fanned "
            f"across worker processes; certification ran in the "
            f"inventor's own process)."
        )
    if advice.cache == "hit":
        notice += (
            " Solve cache: hit (a previously certified solution for these "
            "exact payoffs was served; the proof obligations are unchanged)."
        )
    elif advice.cache == "warm":
        notice += (
            " Solve cache: warm (a cached support hint resolved the game "
            "with one exact solve, skipping the screening phase)."
        )
    return notice
