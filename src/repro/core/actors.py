"""The framework's parties: game inventors and agents.

"The game inventor ... may possibly gain revenues from the game.  We
consider game inventors that create games for which they could predict
the best-reply and prove their feasibility and optimality to the
players/agents."  Inventors here hold the heavyweight solvers
(:mod:`repro.equilibria`) and emit :class:`~repro.core.advice.Advice`
with the matching proof payloads.  Dishonest variants model the paper's
conflicted inventor.

Agents carry only an identity, a (private) player role and a verifier-
selection policy; their preferences never leave their process — the
session hands them advice and verdicts, not the other way around.
"""

from __future__ import annotations

import abc
import random
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Sequence

from repro.core.advice import Advice, ProofFormat, SolutionConcept
from repro.errors import EquilibriumError, ProtocolError
from repro.games.base import Game
from repro.linalg.backend import BackendPolicy, resolve_policy
from repro.games.bimatrix import BimatrixGame
from repro.games.participation import ParticipationGame
from repro.games.profiles import MixedProfile
from repro.equilibria.lemke_howson import lemke_howson
from repro.equilibria.pure import maximal_pure_nash, pure_nash_equilibria
from repro.equilibria.support_enumeration import (
    equilibrium_for_supports,
    find_one_equilibrium,
)
from repro.equilibria.symmetric import participation_equilibrium, symmetric_equilibria
from repro.interactive.p1 import P1Prover
from repro.interactive.p2 import P2Prover
from repro.proofs.builder import build_max_nash_certificate, build_nash_certificate
from repro.proofs.serialize import encode_certificate


@dataclass(frozen=True)
class AdvicePackage:
    """What an inventor hands the session: the advice and, for interactive
    formats, a live prover handle the verifier can query."""

    advice: Advice
    prover: Any = None


class GameInventor(abc.ABC):
    """Base inventor: owns games and answers advice requests."""

    def __init__(self, name: str):
        self.name = name

    @abc.abstractmethod
    def advise(self, game_id: str, game: Game, agent, privacy: str) -> AdvicePackage:
        """Produce advice for ``agent`` (an index or "both").

        ``privacy`` is "open" or "private"; inventors that support private
        verification switch to P2-style disclosure when asked.
        """

    def prepare_games(self, games: "Sequence[tuple[str, Game]]") -> None:
        """Batch hook: pre-solve a stream of games before advising.

        The base inventor has no shared solver state, so this is a
        no-op.  Inventors whose hard step benefits from amortized
        setup (a warm solver cache, a live worker pool) override it —
        see :meth:`BimatrixInventor.prepare_games` — so that a batch of
        consultations pays for backend and executor setup once, not per
        query.
        """

    def close(self) -> None:
        """Release any long-lived solver resources (worker pools).

        No-op by default; sharding inventors override it.  The authority
        calls this for every registered inventor on its own
        :meth:`~repro.core.authority.RationalityAuthority.close`.
        """

    def attach_solve_cache(self, cache) -> None:
        """Offer this inventor a cross-run solve cache.

        No-op by default: only inventors whose hard step is cacheable
        by exact payoff fingerprint (see :meth:`BimatrixInventor
        .attach_solve_cache`) opt in.  The consultation service calls
        this for every registered inventor, so attaching must be cheap
        and idempotent; an inventor constructed with its own cache
        keeps it.
        """

    def set_screening_workers(self, workers: int) -> bool:
        """Ask this inventor to run future screens on ``workers`` shards.

        No-op (returns ``False``) by default: only inventors that fan
        screening across a worker pool have a knob to turn.  The
        service's adaptive controller calls this between drains; by the
        executor determinism contract the shard count changes cost,
        never answers.
        """
        return False

    def drain_pool_events(self) -> "list[dict]":
        """Pop this inventor's screening-pool supervision events.

        Empty by default: only inventors that fan screening across a
        process pool (see :meth:`BimatrixInventor.drain_pool_events`)
        have mid-run rebuilds or serial degradations to report.  The
        consultation service drains these at the end of every drain and
        turns them into ``service.pool.rebuilt`` /
        ``service.pool.degraded`` audit records.
        """
        return []

    @property
    def solve_cache(self):
        """The cross-run solve cache this inventor uses, if any.

        The consultation service aggregates drain telemetry over the
        caches its inventors *actually* consult — which, when an
        inventor was constructed with (or earlier attached to) a
        different cache, is not necessarily the service's own.
        """
        return None

    def advise_many(
        self, requests: "Sequence[tuple[str, Game, Any, str]]"
    ) -> "list[AdvicePackage]":
        """Answer a batch of ``(game_id, game, agent, privacy)`` requests.

        Pre-solves every distinct game through :meth:`prepare_games`,
        then advises in request order.  Results are identical to calling
        :meth:`advise` per request — batching amortizes the inventor's
        search cost, never changes its answers.
        """
        distinct: dict[str, Game] = {}
        for game_id, game, __, __ in requests:
            distinct.setdefault(game_id, game)
        self.prepare_games(list(distinct.items()))
        return [
            self.advise(game_id, game, agent, privacy)
            for game_id, game, agent, privacy in requests
        ]


class PureNashInventor(GameInventor):
    """Advises a (maximal) pure Nash equilibrium with a Fig. 2 certificate."""

    def __init__(self, name: str, maximal: bool = True, explicit: bool = True):
        super().__init__(name)
        self._maximal = maximal
        self._explicit = explicit

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        if self._maximal:
            candidates = maximal_pure_nash(game)
            concept = SolutionConcept.MAXIMAL_PURE_NASH
        else:
            candidates = pure_nash_equilibria(game)
            concept = SolutionConcept.PURE_NASH
        if not candidates:
            raise EquilibriumError(f"{game_id} has no pure Nash equilibrium")
        profile = candidates[0]
        if self._maximal:
            cert = build_max_nash_certificate(game, profile, explicit=self._explicit)
        else:
            cert = build_nash_certificate(game, profile, explicit=self._explicit)
        advice = Advice(
            game_id=game_id,
            agent=agent,
            concept=concept,
            proof_format=ProofFormat.CERTIFICATE,
            suggestion=profile,
            proof=encode_certificate(cert),
            inventor=self.name,
        )
        return AdvicePackage(advice=advice)


class BimatrixInventor(GameInventor):
    """Computes a mixed equilibrium (the PPAD-hard step) and proves it
    interactively: P1 when privacy is "open", P2 when "private".

    ``backend`` selects the numeric search policy for the hard step
    (``"exact"``, ``"float+certify"``, ``"numpy"``, ``"sharded"`` or
    ``"auto"``; also accepts a
    :class:`~repro.linalg.backend.BackendPolicy`).  The solvers certify
    approximately-found candidates exactly before returning, so in every
    mode the advice is an exact, certified equilibrium carrying the same
    proof obligations — only the inventor's search cost changes.  On
    degenerate games with multiple equilibria an approximate search may
    settle on a *different* (equally exact) equilibrium than the exact
    search would, which is why the mode that actually ran is recorded
    on the advice for the audit log.

    A policy with ``workers > 1`` shards support-pair screening across
    a process pool.  The pool is created lazily, shared across every
    solve this inventor performs (that is the batch-consultation
    amortization: :meth:`prepare_games` pre-solves a stream of games
    against one pool), and released by :meth:`close`.

    ``solve_cache`` optionally supplies a cross-run
    :class:`~repro.service.cache.SolveCache`: solves are then keyed by
    the game's canonical payoff fingerprint, so an exact repeat (same
    payoff bytes, any game id) serves the previously certified profile
    without searching, and a near-repeat of the same shape tries the
    cache's winning-support hints — one exact support-restricted solve —
    before falling back to a full screen.  The consultation service
    attaches its cache here via :meth:`attach_solve_cache`.
    """

    def __init__(self, name: str, method: str = "lemke-howson",
                 commitment_mode: bool = False, rng: random.Random | None = None,
                 backend: str | BackendPolicy | None = None,
                 solve_cache=None):
        super().__init__(name)
        if method not in ("lemke-howson", "support-enumeration"):
            raise ProtocolError(f"unknown solve method {method!r}")
        self._method = method
        self._commitments = commitment_mode
        self._rng = rng or random.Random(0)
        self._policy = resolve_policy(backend)
        self._cache: dict[str, MixedProfile] = {}
        self._executor = None
        self._executor_used: dict[str, str] = {}
        self._solve_cache = solve_cache
        self._cache_status: dict[str, str] = {}
        self._solve_ms: dict[str, float] = {}
        self._workers_override: int | None = None

    @property
    def backend_mode(self) -> str:
        """The search mode this inventor was configured with."""
        return self._policy.mode

    def effective_backend(self, game: BimatrixGame) -> str:
        """The mode the policy actually resolves to for this game.

        This — not the requested mode — is what the advice records: an
        "auto" policy that stayed exact on a small game must not be
        audited as an approximate search.
        """
        n, m = game.action_counts
        return self._policy.search_backend(n + m).mode

    def effective_executor(self, game_id: str) -> str:
        """The executor that actually ran the game's search.

        ``"sharded"`` only when the solve really fanned screening across
        a pool; a pool that could not start (restricted sandbox) records
        the serial fallback that did the work instead.
        """
        return self._executor_used.get(game_id, "serial")

    def _wants_sharding(self, game: BimatrixGame) -> bool:
        if self._method != "support-enumeration":
            return False  # Lemke-Howson is path-following: nothing to shard
        n, m = game.action_counts
        if self._policy.search_backend(n + m).exact:
            return False
        return self.screening_workers > 1

    @property
    def screening_workers(self) -> int:
        """The shard count future screens will fan across.

        The policy's resolved worker count, unless the service's
        adaptive controller overrode it via
        :meth:`set_screening_workers`.
        """
        if self._workers_override is not None:
            return self._workers_override
        return self._policy.resolved_workers()

    def set_screening_workers(self, workers: int) -> bool:
        """Adopt a controller-chosen shard count for future screens.

        Cheap between solves: an existing sharded pool is resized in
        place (shut down now, restarted lazily at the new width),
        otherwise the executor is released so the next screen creates
        one at the new count.  Answers never change — the executors'
        determinism contract fixes chunk boundaries independently of
        worker count — so this is purely a cost knob.
        """
        if workers < 1:
            raise ProtocolError("screening workers must be positive")
        if workers == self.screening_workers:
            return False
        self._workers_override = workers
        if self._executor is not None:
            from repro.equilibria.executors import ShardedExecutor

            if isinstance(self._executor, ShardedExecutor) and workers > 1:
                self._executor.resize(workers)
            else:
                self._executor.close()
                self._executor = None
        return True

    def _screening_executor(self):
        """The shared (lazily created) screening pool."""
        if self._executor is None:
            from repro.equilibria.executors import make_executor

            self._executor = make_executor(self.screening_workers)
        return self._executor

    def drain_pool_events(self) -> "list[dict]":
        """Pop the screening executor's rebuild/degrade events."""
        executor = self._executor
        drain = getattr(executor, "drain_events", None)
        return drain() if drain is not None else []

    def close(self) -> None:
        """Release the shared screening pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def attach_solve_cache(self, cache) -> None:
        """Adopt a cross-run solve cache unless one was set at construction."""
        if self._solve_cache is None:
            self._solve_cache = cache

    @property
    def solve_cache(self):
        """The cross-run cache this inventor consults (None when uncached)."""
        return self._solve_cache

    def cache_state(self, game_id: str) -> str:
        """What the cross-run cache did for this game's solve (see
        :data:`~repro.core.advice.CACHE_STATES`)."""
        return self._cache_status.get(game_id, "")

    def solve_millis(self, game_id: str) -> float:
        """Measured wall time of this game's hard step (ms; -1 unknown)."""
        return self._solve_ms.get(game_id, -1.0)

    def _try_support_hints(self, game: BimatrixGame, hints):
        """One exact support-restricted solve per cached winning pair.

        The cross-run warm start: a near-repeat game very often carries
        its equilibrium on a support pair that already won for an
        earlier same-shaped game.  Each hint is re-decided from scratch
        on *this* game's exact payoffs, so a stale hint can cost one
        exact solve, never an uncertified answer.  The cheap route runs
        first: both Lemma-1 sides re-solved as linear systems on the
        fraction-free Bareiss kernel and the result pushed through the
        integer-lattice certification gate — when the hinted system
        pins a unique mix (the generic case) this decides the hint
        without touching the exact LP, and the unique solution is
        necessarily the same profile the LP would return.
        Underdetermined or uncertified hints fall back to
        ``equilibrium_for_supports`` (the full exact-LP decision), as
        before.  Note that on any game with several equilibria
        (degenerate or not) a hint may legitimately settle on a
        different (equally exact) equilibrium than the cold enumeration
        order would — which is why the solve is recorded as ``"warm"``.
        """
        from repro.equilibria.mixed import certify_mixed_profile
        from repro.equilibria.support_enumeration import reconstruct_one_side
        from repro.errors import ProfileError

        n, m = game.action_counts
        for rs, cs in hints:
            if not rs or not cs or max(rs) >= n or max(cs) >= m:
                continue
            y_side = reconstruct_one_side(game.row_matrix, rs, cs, m)
            if y_side is not None:
                x_side = reconstruct_one_side(
                    game.column_matrix_transposed, cs, rs, n
                )
                if x_side is not None:
                    try:
                        profile = MixedProfile((x_side[0], y_side[0]))
                    except ProfileError:
                        profile = None
                    if profile is not None and certify_mixed_profile(
                        game, profile
                    ) is not None:
                        return profile
            result = equilibrium_for_supports(game, rs, cs)
            if result is not None:
                return result[0]
        return None

    def solve(self, game_id: str, game: BimatrixGame) -> MixedProfile:
        """The inventor's expensive step, cached per game id *and* — when
        a cross-run cache is attached — per exact payoff fingerprint."""
        if game_id in self._cache:
            return self._cache[game_id]
        started = time.perf_counter()
        cache = self._solve_cache
        fingerprint = mode = None
        if cache is not None:
            fingerprint = getattr(game, "payoff_fingerprint", None)
            mode = self.effective_backend(game)
            if fingerprint is not None:
                cached = cache.lookup_profile(
                    fingerprint, self._method, mode, game=game
                )
                if cached is not None:
                    self._cache[game_id] = cached
                    self._executor_used[game_id] = "serial"
                    self._cache_status[game_id] = "hit"
                    self._solve_ms[game_id] = (
                        time.perf_counter() - started
                    ) * 1000.0
                    return cached
        status = "" if fingerprint is None else "miss"
        executor_name = "serial"
        profile = None
        if self._method == "lemke-howson":
            profile = lemke_howson(game, 0, policy=self._policy)
        else:
            if cache is not None:
                profile = self._try_support_hints(
                    game, cache.support_hints(game.action_counts)
                )
                if profile is not None:
                    status = "warm" if fingerprint is not None else ""
            if profile is None:
                if self._wants_sharding(game):
                    executor = self._screening_executor()
                    profile = find_one_equilibrium(
                        game, policy=self._policy, executor=executor
                    )
                    executor_name = getattr(
                        executor, "effective_name", executor.name
                    )
                else:
                    profile = find_one_equilibrium(game, policy=self._policy)
        if cache is not None and fingerprint is not None:
            cache.store_profile(fingerprint, self._method, mode, profile)
            cache.note_solved(warm=(status == "warm"))
            if self._method == "support-enumeration":
                cache.note_hint(game.action_counts, profile.supports())
        self._cache[game_id] = profile
        self._executor_used[game_id] = executor_name
        self._cache_status[game_id] = status
        self._solve_ms[game_id] = (time.perf_counter() - started) * 1000.0
        return profile

    def prepare_games(self, games: Sequence[tuple[str, BimatrixGame]]) -> None:
        """Pre-solve a batch of games against one shared screening pool.

        This is the inventor half of the batch-consultation path: the
        worker pool (when the policy shards) and the per-run float
        payoff conversions are paid once for the whole stream, and every
        subsequent :meth:`advise` for these games hits the cache.
        """
        for game_id, game in games:
            self.solve(game_id, game)

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        if not isinstance(game, BimatrixGame):
            raise ProtocolError("BimatrixInventor advises bimatrix games only")
        equilibrium = self.solve(game_id, game)
        if privacy == "private":
            if agent == "both":
                raise ProtocolError("private advice addresses a single agent")
            agent_index = int(agent)
            prover = P2Prover(
                game, equilibrium, agent_index,
                use_commitments=self._commitments, rng=self._rng,
            )
            advice = Advice(
                game_id=game_id,
                agent=agent,
                concept=SolutionConcept.MIXED_NASH,
                proof_format=ProofFormat.INTERACTIVE_P2,
                suggestion=equilibrium.distribution(agent_index),
                proof=None,
                inventor=self.name,
                backend=self.effective_backend(game),
                executor=self.effective_executor(game_id),
                cache=self.cache_state(game_id),
                solve_ms=self.solve_millis(game_id),
            )
            return AdvicePackage(advice=advice, prover=prover)
        announcement = P1Prover(game, equilibrium).announce()
        suggestion: Any
        if agent == "both":
            suggestion = equilibrium
        else:
            suggestion = equilibrium.distribution(int(agent))
        advice = Advice(
            game_id=game_id,
            agent=agent,
            concept=SolutionConcept.MIXED_NASH,
            proof_format=ProofFormat.INTERACTIVE_P1,
            suggestion=suggestion,
            proof={
                "row_support": list(announcement.row_support),
                "column_support": list(announcement.column_support),
            },
            inventor=self.name,
            backend=self.effective_backend(game),
            executor=self.effective_executor(game_id),
            cache=self.cache_state(game_id),
            solve_ms=self.solve_millis(game_id),
        )
        return AdvicePackage(advice=advice)


class ParticipationInventor(GameInventor):
    """Sect. 5: computes the symmetric equilibrium p and advises it to all.

    ``backend`` selects the root-scan policy (the advised p is an exact
    rational in every mode — only the grid scan that brackets it runs in
    float under "float+certify"/"auto").
    """

    def __init__(self, name: str, prefer: str = "small",
                 backend: str | BackendPolicy | None = None):
        super().__init__(name)
        self._prefer = prefer
        self._policy = resolve_policy(backend)
        self._cache: dict[str, Fraction] = {}

    @property
    def backend_mode(self) -> str:
        """The search mode this inventor was configured with."""
        return self._policy.mode

    def effective_backend(self, game: ParticipationGame) -> str:
        """The mode the policy resolves to for this game (see
        :meth:`BimatrixInventor.effective_backend`)."""
        return self._policy.search_backend(game.num_players).mode

    def equilibrium_probability(self, game_id: str, game: ParticipationGame) -> Fraction:
        if game_id not in self._cache:
            self._cache[game_id] = participation_equilibrium(
                game, prefer=self._prefer, policy=self._policy
            )
        return self._cache[game_id]

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        if not isinstance(game, ParticipationGame):
            raise ProtocolError("ParticipationInventor advises participation games")
        p = self.equilibrium_probability(game_id, game)
        advice = Advice(
            game_id=game_id,
            agent=agent,
            concept=SolutionConcept.SYMMETRIC_MIXED_NASH,
            proof_format=ProofFormat.INDIFFERENCE_IDENTITY,
            suggestion=p,
            proof={"identity": "eq5", "p": f"{p.numerator}/{p.denominator}"},
            inventor=self.name,
            backend=self.effective_backend(game),
        )
        return AdvicePackage(advice=advice)


class TwoFacedParticipationInventor(ParticipationInventor):
    """The multi-equilibrium cheat of Sect. 5.

    "The existence of multiple equilibria would allow a dishonest prover
    to send different probabilities to the players, with each probability
    corresponding to a different symmetric equilibrium."  Each advised p
    passes Eq. (5) individually — only the agents' cross-check catches
    the inconsistency.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._flip = 0

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        if not isinstance(game, ParticipationGame):
            raise ProtocolError("ParticipationInventor advises participation games")
        roots = [
            p for p in symmetric_equilibria(game, policy=self._policy) if 0 < p < 1
        ]
        if len(roots) < 2:
            return super().advise(game_id, game, agent, privacy)
        p = roots[self._flip % len(roots)]
        self._flip += 1
        advice = Advice(
            game_id=game_id,
            agent=agent,
            concept=SolutionConcept.SYMMETRIC_MIXED_NASH,
            proof_format=ProofFormat.INDIFFERENCE_IDENTITY,
            suggestion=p,
            proof={"identity": "eq5", "p": f"{p.numerator}/{p.denominator}"},
            inventor=self.name,
            backend=self.effective_backend(game),
        )
        return AdvicePackage(advice=advice)


class CorrelatedInventor(GameInventor):
    """Advises a correlated device (welfare-maximal, from the exact LP).

    The Aumann contrast made executable: the device is *advised and
    verified*, not trusted — the agents check the obedience constraints
    themselves through the registry.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self._cache: dict[str, dict] = {}

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        from repro.core.advice import SolutionConcept as _SC
        from repro.equilibria.correlated import correlated_equilibrium_lp

        if game_id not in self._cache:
            self._cache[game_id] = correlated_equilibrium_lp(game)
        device = self._cache[game_id]
        advice = Advice(
            game_id=game_id,
            agent=agent,
            concept=_SC.CORRELATED,
            proof_format=ProofFormat.EMPTY_PROOF,
            suggestion=dict(device),
            proof=None,
            inventor=self.name,
        )
        return AdvicePackage(advice=advice)


class ExtensiveFormInventor(GameInventor):
    """Advises the backward-induction plan of a sequential game."""

    def __init__(self, name: str):
        super().__init__(name)
        self._cache: dict[str, dict] = {}

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        from repro.core.advice import SolutionConcept as _SC
        from repro.games.extensive import ExtensiveGame, backward_induction

        if not isinstance(game, ExtensiveGame):
            raise ProtocolError("ExtensiveFormInventor advises extensive-form games")
        if game_id not in self._cache:
            strategy, __ = backward_induction(game)
            self._cache[game_id] = strategy
        advice = Advice(
            game_id=game_id,
            agent=agent,
            concept=_SC.SUBGAME_PERFECT,
            proof_format=ProofFormat.EMPTY_PROOF,
            suggestion=dict(self._cache[game_id]),
            proof=None,
            inventor=self.name,
        )
        return AdvicePackage(advice=advice)


class MisadvisingInventor(GameInventor):
    """Wraps an honest inventor and corrupts the suggestion.

    The proof payload is left untouched, so the corruption is exactly the
    kind a proof check must catch: a suggestion that no longer matches
    (or no longer satisfies) its own proof.
    """

    def __init__(self, name: str, inner: GameInventor, corrupt):
        super().__init__(name)
        self._inner = inner
        self._corrupt = corrupt

    def attach_solve_cache(self, cache) -> None:
        """The wrapped inventor does the solving, so it gets the cache."""
        self._inner.attach_solve_cache(cache)

    @property
    def solve_cache(self):
        return self._inner.solve_cache

    def close(self) -> None:
        self._inner.close()

    def advise(self, game_id, game, agent, privacy) -> AdvicePackage:
        import dataclasses

        package = self._inner.advise(game_id, game, agent, privacy)
        # replace() keeps every honest field (present and future) intact;
        # only the suggestion is corrupted and the blame redirected here.
        corrupted = dataclasses.replace(
            package.advice,
            suggestion=self._corrupt(package.advice.suggestion),
            inventor=self.name,
        )
        return AdvicePackage(advice=corrupted, prover=package.prover)


@dataclass
class AgentPolicy:
    """How an agent selects verifiers and reacts to verdicts."""

    verifier_count: int = 3
    adopt_on_majority: bool = True


@dataclass
class AuthorityAgent:
    """A registered agent: public identity, private role, selection policy."""

    name: str
    player_role: int | str = 0
    policy: AgentPolicy = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.policy is None:
            self.policy = AgentPolicy()
