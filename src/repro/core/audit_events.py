"""The audit-event registry: every event name, in one place, documented.

The audit log is the accountability spine of the whole system — the
paper's discussion section makes "report ... to a reputation system that
audits their actions" a first-class feature — which means the *names* of
audit events are part of the public contract: tests assert on them,
operators filter ``GET /audit?event=`` by them, and the blame queries
aggregate over them.  Scattering those names as string literals across
nine PRs' worth of modules made typos undetectable (a misspelled event
silently records under a name nobody queries).

This module is the single source of truth.  Each event is declared once
as an ``EVENT_*`` constant and registered in :data:`REGISTRY` with a
one-line description of when it fires.  The static linter
(``python -m repro.devtools.lint``, rule R3) machine-checks the rest of
the tree against it: ``record(...)`` call sites must use these constants
(never raw literals), and every constant must be registered and
documented here.

Adding an event is a three-line change in this file: define the
constant, add the REGISTRY entry, and the linter keeps everyone honest
from then on.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Consultation protocol (the paper's gamesman/inventor/verifier loop)
# ----------------------------------------------------------------------
EVENT_GAME_PUBLISHED = "game.published"
EVENT_ADVICE_REQUESTED = "advice.requested"
EVENT_ADVICE_DELIVERED = "advice.delivered"
EVENT_VERDICT = "verification.verdict"
EVENT_MAJORITY = "verification.majority"
EVENT_ADVICE_ADOPTED = "advice.adopted"
EVENT_ADVICE_REJECTED = "advice.rejected"
EVENT_CROSS_CHECK = "advice.cross-check"
EVENT_BATCH_CONSULTATION = "consultation.batch"

# ----------------------------------------------------------------------
# Blame and statistics (the Ron/Norton accountability trail)
# ----------------------------------------------------------------------
EVENT_INVENTOR_BLAMED = "blame.inventor"
EVENT_VERIFIER_BLAMED = "blame.verifier"
EVENT_AGENT_BLAMED = "blame.agent"
EVENT_RULE_VIOLATION = "gameauthority.violation"
EVENT_STATISTICS_AUDIT = "statistics.audit"

# ----------------------------------------------------------------------
# Service core (admission, drain, autotune, deadlines, supervision)
# ----------------------------------------------------------------------
EVENT_SERVICE_COMPLETED = "service.consultation.completed"
EVENT_SERVICE_DRAINED = "service.queue.drained"
EVENT_CALLBACK_FAILED = "service.callback.failed"
EVENT_AUTOTUNE_RESIZED = "service.autotune.resized"
EVENT_BACKPRESSURE = "service.admission.backpressure"
EVENT_DEADLINE_EXCEEDED = "service.deadline.exceeded"
EVENT_VERIFY_RESPAWNED = "service.verify.respawned"
EVENT_POOL_REBUILT = "service.pool.rebuilt"
EVENT_POOL_DEGRADED = "service.pool.degraded"

# ----------------------------------------------------------------------
# Persistent cache (warm state on disk)
# ----------------------------------------------------------------------
EVENT_CACHE_LOADED = "cache.load.completed"
EVENT_CACHE_LOAD_REJECTED = "cache.load.rejected"
EVENT_CACHE_SAVED = "cache.saved"

# ----------------------------------------------------------------------
# HTTP server (front-end lifecycle and durability)
# ----------------------------------------------------------------------
EVENT_SERVER_STARTED = "server.started"
EVENT_SERVER_SHUTDOWN = "server.shutdown.completed"
EVENT_SERVER_PUMP_FAILED = "server.pump.failed"
EVENT_DURABILITY_DEGRADED = "server.durability.degraded"


#: The machine-checked catalogue: event name -> when it fires.  The
#: linter's R3 rule requires every ``EVENT_*`` constant in this module
#: to appear here with a non-empty description, and every audit-log
#: ``record(...)`` call site in ``src/`` to spell its event via one of
#: these constants.
REGISTRY: dict[str, str] = {
    EVENT_GAME_PUBLISHED:
        "An inventor registered a game with the authority.",
    EVENT_ADVICE_REQUESTED:
        "An agent opened a consultation session for a game.",
    EVENT_ADVICE_DELIVERED:
        "The inventor's advice (with proof obligations) reached the agent.",
    EVENT_VERDICT:
        "One verifier's accept/reject verdict on a piece of advice.",
    EVENT_MAJORITY:
        "The verifier panel's majority decision (carries verify_ms).",
    EVENT_ADVICE_ADOPTED:
        "The agent acted on verified advice.",
    EVENT_ADVICE_REJECTED:
        "The agent declined advice (or verification failed it).",
    EVENT_CROSS_CHECK:
        "A second-opinion consultation compared two inventors' advice.",
    EVENT_BATCH_CONSULTATION:
        "A consult_many/submit_many batch drained as one group.",
    EVENT_INVENTOR_BLAMED:
        "A rejected proof marked the inventor for blame.",
    EVENT_VERIFIER_BLAMED:
        "A dissenting verifier was out-voted by the majority.",
    EVENT_AGENT_BLAMED:
        "The Norton case: an agent ignored verified rational advice.",
    EVENT_RULE_VIOLATION:
        "The game authority caught a rule violation in play.",
    EVENT_STATISTICS_AUDIT:
        "A statistical audit of an inventor's advice stream ran.",
    EVENT_SERVICE_COMPLETED:
        "One consultation future resolved (latency + cache state).",
    EVENT_SERVICE_DRAINED:
        "One admission-queue drain finished (depth, hit rate, "
        "latency percentiles).",
    EVENT_CALLBACK_FAILED:
        "A future's done-callback raised; surfaced instead of swallowed.",
    EVENT_AUTOTUNE_RESIZED:
        "The EWMA autotuner resized verify workers or screening shards.",
    EVENT_BACKPRESSURE:
        "An admission was shed, blocked, or timed out at the "
        "high-water mark.",
    EVENT_DEADLINE_EXCEEDED:
        "A consultation's wall-clock budget lapsed; the solve was "
        "abandoned.",
    EVENT_VERIFY_RESPAWNED:
        "A verify-stage puller crashed and a replacement was spawned.",
    EVENT_POOL_REBUILT:
        "A broken screening process pool got its one fresh rebuild.",
    EVENT_POOL_DEGRADED:
        "A screening pool broke again post-rebuild; sticky serial "
        "degrade.",
    EVENT_CACHE_LOADED:
        "A persistent cache file passed the tamper checks and loaded.",
    EVENT_CACHE_LOAD_REJECTED:
        "A cache file or journal frame failed a tamper/lattice check.",
    EVENT_CACHE_SAVED:
        "The cache's certified state was written to disk.",
    EVENT_SERVER_STARTED:
        "The HTTP front-end bound its port and started serving.",
    EVENT_SERVER_SHUTDOWN:
        "A graceful shutdown drained, flushed, and cut a snapshot.",
    EVENT_SERVER_PUMP_FAILED:
        "One background pump iteration failed (counted, backed off).",
    EVENT_DURABILITY_DEGRADED:
        "Journal flushes kept failing; write-behind fell back to "
        "snapshot-only.",
}


def is_registered(event: str) -> bool:
    """Whether ``event`` is a known, documented audit event name."""
    return event in REGISTRY


def describe(event: str) -> str:
    """The one-line description of a registered event name."""
    return REGISTRY[event]


def all_events() -> tuple[str, ...]:
    """Every registered event name, in declaration order."""
    return tuple(REGISTRY)
