"""Exception hierarchy for the rationality-authority reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole library with a single ``except`` clause while
still being able to distinguish the failure domains that matter to the
paper's protocol: malformed games, failed proof checks, broken interactive
transcripts, and protocol/authority violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GameError(ReproError):
    """A game definition or profile is malformed (wrong sizes, bad indices)."""


class ProfileError(GameError):
    """A strategy profile does not fit the game it is used with."""


class EquilibriumError(ReproError):
    """Equilibrium computation failed (no equilibrium found, bad support)."""


class LinearAlgebraError(ReproError):
    """Exact linear algebra failed (singular system, inconsistent system)."""


class BackendError(LinearAlgebraError):
    """A numeric search backend could not reach a trustworthy answer.

    Raised by approximate (float) backends when a solve is inconclusive —
    an iteration cap, a near-singular pivot, a result too close to a
    tolerance boundary.  Never raised by the exact backend.  Callers in
    the two-phase pipeline catch this and fall back to the exact path, so
    the error is a routing signal, not a failure of the library.
    """


class ProofError(ReproError):
    """A formal proof certificate is structurally invalid."""


class ProofRejected(ProofError):
    """A proof certificate was well-formed but failed verification.

    This is the checker's *sound rejection*: the claim is not established.
    The ``reason`` attribute carries a human-readable account of the first
    failing step, which the authority's audit log records verbatim.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class TranscriptError(ReproError):
    """An interactive-proof transcript was malformed or out of order."""


class VerificationFailure(ReproError):
    """An interactive verifier detected a cheating prover."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CommitmentError(ReproError):
    """A cryptographic commitment failed to open correctly."""


class SignatureError(ReproError):
    """A signature did not verify against the registered key."""


class ProtocolError(ReproError):
    """A rationality-authority session was driven out of protocol order."""


class AdmissionError(ProtocolError):
    """The consultation service refused (or timed out) an admission.

    Raised by :meth:`~repro.service.service.AuthorityService.submit` when
    the pending queue sits at its configured high-water mark and the
    backpressure policy is ``"raise"`` — or when a ``"block"``\\ ing
    admission exceeds its wait budget.  The shed load is recorded in the
    audit log (``service.admission.backpressure``), so refusing work is
    an accountable act, not a silent drop."""


class DeadlineExceeded(ReproError):
    """A consultation ran past its caller-supplied deadline.

    The typed *outcome* of an expired submission: the drain resolves the
    consultation's future with this exception — at admission-queue exit
    when the deadline lapsed while queued, or after abandoning a solve
    that outran its budget — audits ``service.deadline.exceeded`` and
    moves on to the next submission, so one wedged (or adversarially
    expensive) game can never head-of-line-block the pump for everyone
    else.  The HTTP front-end maps it to **504** plus a ``Retry-After``
    hint.  ``deadline_ms`` carries the budget that was exceeded.
    """

    def __init__(self, message: str, deadline_ms: float | None = None):
        super().__init__(message)
        self.deadline_ms = deadline_ms


class FaultInjected(ReproError):
    """The default error thrown by an armed fault-injection plan.

    Deliberately a :class:`ReproError` subclass so chaos tests can
    assert "every future resolved to advice or a *typed* error" with
    one catch, and deliberately its own leaf so production code never
    handles it specially by accident — resilience paths must react to
    the *native* failure dialects (``OSError``,
    :class:`PersistenceError`, ``BrokenProcessPool``), which a
    :class:`~repro.service.faults.FaultSpec` can also speak.
    """


class PersistenceError(ReproError):
    """A persisted solve-cache document could not be trusted or decoded.

    Raised for truncated/bit-flipped files (digest mismatch), stale or
    unknown schema versions and malformed entries.  The solve cache
    turns this into a *clean-miss* empty load plus a
    ``cache.load.rejected`` audit record — rejection never degrades
    soundness, only warmth.
    """


class AdviceRejected(ReproError):
    """An agent rejected the inventor's advice after verification."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason
