"""Deterministic randomness helpers.

All stochastic components of the library (interactive verifier queries,
arrival processes, the Fig. 7 simulation) draw from explicitly passed
generators so that every experiment is reproducible from a seed.  Two
families are provided:

* :func:`make_rng` — a stdlib :class:`random.Random`, used by protocol
  code that draws a handful of indices or permutations;
* :func:`make_np_rng` — a :class:`numpy.random.Generator`, used by the
  bulk simulations.

:func:`derive_seed` deterministically derives independent child seeds from
a parent seed and a string label, so that, e.g., every iteration of a
parameter sweep gets its own stream without manual bookkeeping.
"""

from __future__ import annotations

import hashlib
import random

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

_SEED_BYTES = 8


def derive_seed(seed: int, label: str) -> int:
    """Derive an independent child seed from ``seed`` and a string label.

    The derivation hashes ``seed || label`` with SHA-256, so distinct
    labels give statistically independent streams and the mapping is
    stable across processes and platforms.
    """
    payload = f"{seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def make_rng(seed: int, label: str = "") -> random.Random:
    """Return a stdlib ``Random`` seeded from ``seed`` (and optional label)."""
    if label:
        seed = derive_seed(seed, label)
    return random.Random(seed)


def make_np_rng(seed: int, label: str = "") -> "np.random.Generator":
    """Return a numpy ``Generator`` seeded from ``seed`` (and optional label).

    Requires numpy (the bulk simulations that use this are the numpy-
    dependent corner of the library); the protocol layers draw from
    :func:`make_rng` and run on a bare interpreter.
    """
    if np is None:
        raise ImportError(
            "make_np_rng requires numpy; the stdlib protocol paths use make_rng"
        )
    if label:
        seed = derive_seed(seed, label)
    return np.random.default_rng(seed)
