"""Mixed Nash equilibria: exact checks and equilibrium values.

The support characterization ("the second Nash theorem" the paper invokes
in Lemma 1) does all the work: a mixed profile is a Nash equilibrium iff,
for every player, all supported actions attain the maximal expected
payoff against the others.  Checking this is polynomial given the profile
— which is precisely why verification can be cheap while computation is
PPAD-hard.

In the two-phase solver pipeline this module is the *certification*
side: whatever numeric backend a search ran on, its candidates pass
through :func:`certify_mixed_profile` (exact arithmetic, no epsilon)
before they are allowed out of the solver layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.fractions_util import to_fraction
from repro.games.base import Game
from repro.games.profiles import MixedProfile
from repro.equilibria.best_reply import (
    best_reply_gap,
    best_reply_gaps,
    mixed_action_payoffs,
)


@dataclass(frozen=True)
class MixedNashReport:
    """Outcome of an exact mixed-equilibrium check.

    ``gaps[i]`` is how much player ``i`` could gain by a best deviation
    (all zero iff the profile is an exact equilibrium); ``values[i]`` is
    player ``i``'s expected payoff (the λ_i of Sect. 4).
    """

    is_equilibrium: bool
    gaps: tuple[Fraction, ...]
    values: tuple[Fraction, ...]

    @property
    def epsilon(self) -> Fraction:
        """The smallest epsilon for which this is an epsilon-equilibrium."""
        return max(self.gaps)


def is_mixed_nash(game: Game, mixed: MixedProfile) -> bool:
    """Exact Nash check via the support characterization."""
    for player in game.players():
        payoffs = mixed_action_payoffs(game, player, mixed)
        best = max(payoffs)
        for action in mixed.support(player):
            if payoffs[action] != best:
                return False
    return True


def check_mixed_nash(game: Game, mixed: MixedProfile) -> MixedNashReport:
    """Full report: equilibrium flag, per-player gaps and values."""
    gaps = best_reply_gaps(game, mixed)
    values = tuple(game.expected_payoff(player, mixed) for player in game.players())
    return MixedNashReport(
        is_equilibrium=all(g == 0 for g in gaps),
        gaps=gaps,
        values=values,
    )


def certify_mixed_profile(game: Game, candidate: MixedProfile) -> MixedProfile | None:
    """The exact certification gate of the two-phase pipeline.

    Returns ``candidate`` itself when it passes the exact support
    characterization, None otherwise.  Search backends (float or exact)
    must route every candidate through this gate after rational
    reconstruction; a None sends the caller back to the exact search
    path, so no approximate profile ever reaches :mod:`repro.core`.
    """
    return candidate if is_mixed_nash(game, candidate) else None


def is_epsilon_nash(game: Game, mixed: MixedProfile, epsilon) -> bool:
    """True iff no player can gain more than ``epsilon`` by deviating."""
    epsilon = to_fraction(epsilon)
    if epsilon < 0:
        return False
    return all(
        best_reply_gap(game, player, mixed) <= epsilon for player in game.players()
    )


def equilibrium_values(game: Game, mixed: MixedProfile) -> tuple[Fraction, ...]:
    """The per-player expected payoffs λ_1, ..., λ_n at ``mixed``.

    For a 2-player equilibrium these are exactly the (λ1, λ2) the P2
    prover transmits.
    """
    return tuple(game.expected_payoff(player, mixed) for player in game.players())
