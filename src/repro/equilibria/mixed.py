"""Mixed Nash equilibria: exact checks and equilibrium values.

The support characterization ("the second Nash theorem" the paper invokes
in Lemma 1) does all the work: a mixed profile is a Nash equilibrium iff,
for every player, all supported actions attain the maximal expected
payoff against the others.  Checking this is polynomial given the profile
— which is precisely why verification can be cheap while computation is
PPAD-hard.

In the two-phase solver pipeline this module is the *certification*
side: whatever numeric backend a search ran on, its candidates pass
through :func:`certify_mixed_profile` (exact arithmetic, no epsilon)
before they are allowed out of the solver layer.

Certification runs on the **integer lattice** wherever the game supports
it: a bimatrix game's payoffs are cleared to common-denominator integers
once (:attr:`~repro.games.bimatrix.BimatrixGame.integer_lattice`, cached)
and each candidate's mixed strategies are cleared the same way, so the
Lemma-1 support comparisons reduce to machine-integer dot products —
order-preserving by construction (everything a comparison touches is
scaled by the same positive integer), hence exactly equivalent to the
Fraction check, just without per-operation gcds.  The batched entry
point :func:`certify_many` shares one integerization across all
candidates of a game; :func:`fraction_nash_check` keeps the seed's
Fraction path as the reference (and the fallback for games without a
lattice).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Sequence

from repro.fractions_util import to_fraction
from repro.games.base import Game
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.equilibria.best_reply import (
    best_reply_gap,
    best_reply_gaps,
    mixed_action_payoffs,
)
from repro.linalg.int_exact import integer_table_and_scales, integerize_vector


@dataclass(frozen=True)
class MixedNashReport:
    """Outcome of an exact mixed-equilibrium check.

    ``gaps[i]`` is how much player ``i`` could gain by a best deviation
    (all zero iff the profile is an exact equilibrium); ``values[i]`` is
    player ``i``'s expected payoff (the λ_i of Sect. 4).
    """

    is_equilibrium: bool
    gaps: tuple[Fraction, ...]
    values: tuple[Fraction, ...]

    @property
    def epsilon(self) -> Fraction:
        """The smallest epsilon for which this is an epsilon-equilibrium."""
        return max(self.gaps)


def fraction_nash_check(game: Game, mixed: MixedProfile) -> bool:
    """The seed's Fraction-arithmetic Nash check (reference semantics).

    Exact and game-agnostic; :func:`is_mixed_nash` routes through the
    integer lattice instead whenever the game provides one, with this
    function as the authority the lattice path must (and, per the
    property tests, does) agree with.
    """
    for player in game.players():
        payoffs = mixed_action_payoffs(game, player, mixed)
        best = max(payoffs)
        for action in mixed.support(player):
            if payoffs[action] != best:
                return False
    return True


def _integerized_support(distribution: Sequence[Fraction]):
    """One player's mix cleared to ints: ``(nonzero (index, weight)), support``.

    Clearing by the LCM of the denominators preserves zeroness, so the
    support can be read off the integer weights directly.
    """
    weights, __ = integerize_vector(distribution)
    nonzero = tuple((j, w) for j, w in enumerate(weights) if w)
    return nonzero, tuple(j for j, __ in nonzero)


def _lattice_side_optimal(payoff_rows, nonzero_mix, support) -> bool:
    """One Lemma-1 side on the integer lattice.

    ``payoff_rows`` is one player's integerized payoff matrix (own
    actions x opponent actions), ``nonzero_mix`` the opponent's cleared
    mix.  Every quantity compared is the true expected payoff scaled by
    the same positive integer (payoff scale x mix scale), so the
    supported-actions-attain-the-max check is exactly the Fraction one.
    """
    values = [
        sum(row[j] * w for j, w in nonzero_mix) for row in payoff_rows
    ]
    best = max(values)
    return all(values[i] == best for i in support)


def _lattice_nash_check(game: BimatrixGame, mixed: MixedProfile) -> bool:
    """Both Lemma-1 sides of a bimatrix candidate on the integer lattice."""
    x, y = game._unpack(mixed)  # shared shape validation
    lattice = game.integer_lattice
    y_ints, y_support = _integerized_support(y)
    x_ints, x_support = _integerized_support(x)
    return _lattice_side_optimal(
        lattice.row_payoffs, y_ints, x_support
    ) and _lattice_side_optimal(
        lattice.column_payoffs, x_ints, y_support
    )


def lattice_action_values(game: Game, mixed: MixedProfile):
    """Per-player expected action payoffs on the integer lattice.

    Returns one ``(values, denominator)`` pair per player — ``values[a]``
    is an int with ``values[a] / denominator`` equal, exactly, to
    ``expected_action_payoff(player, a, mixed)`` — or ``None`` when the
    game has no integer utility table or the profile's shape does not
    match the game (callers fall back to the Fraction oracle).

    The denominator is the player's table scale times the *other*
    players' mix-clearing scales, all positive, so within one player the
    integer values compare exactly as the Fractions do; and because the
    denominator is carried, callers that *report* values (the n-player
    verifier) reconstruct bit-identical Fractions at the boundary.
    """
    entry = integer_table_and_scales(game)
    if entry is None:
        return None
    table, payoff_scales = entry
    num_players = game.num_players
    if mixed.num_players != num_players:
        return None
    cleared = []
    for player in game.players():
        dist = mixed.distribution(player)
        if len(dist) != game.num_actions(player):
            return None
        weights, mix_scale = integerize_vector(dist)
        cleared.append(
            (tuple((j, w) for j, w in enumerate(weights) if w), mix_scale)
        )

    out = []
    for player in game.players():
        others = [cleared[q][0] for q in range(num_players) if q != player]
        denominator = payoff_scales[player]
        for q in range(num_players):
            if q != player:
                denominator *= cleared[q][1]
        values = [0] * game.num_actions(player)
        profile = [0] * num_players
        for combo in product(*others):
            weight = 1
            slot = 0
            for q in range(num_players):
                if q == player:
                    continue
                action, w = combo[slot]
                profile[q] = action
                weight *= w
                slot += 1
            for action in range(game.num_actions(player)):
                profile[player] = action
                values[action] += weight * table[tuple(profile)][player]
        out.append((tuple(values), denominator))
    return out


def is_mixed_nash(game: Game, mixed: MixedProfile) -> bool:
    """Exact Nash check via the support characterization.

    Bimatrix games are checked on their cached integer lattice (pure
    ``int`` dot products, no Fraction arithmetic); any other game with an
    integer utility table runs the n-player lattice check
    (:func:`lattice_action_values`); only games that cannot be tabulated
    fall back to the reference :func:`fraction_nash_check`.  All paths
    decide identically — the lattices are order-preserving images of the
    payoffs.
    """
    if isinstance(game, BimatrixGame):
        return _lattice_nash_check(game, mixed)
    lattice = lattice_action_values(game, mixed)
    if lattice is None:
        return fraction_nash_check(game, mixed)
    for player, (values, __) in enumerate(lattice):
        best = max(values)
        for action in mixed.support(player):
            if values[action] != best:
                return False
    return True


def check_mixed_nash(game: Game, mixed: MixedProfile) -> MixedNashReport:
    """Full report: equilibrium flag, per-player gaps and values."""
    gaps = best_reply_gaps(game, mixed)
    values = tuple(game.expected_payoff(player, mixed) for player in game.players())
    return MixedNashReport(
        is_equilibrium=all(g == 0 for g in gaps),
        gaps=gaps,
        values=values,
    )


def certify_mixed_profile(game: Game, candidate: MixedProfile) -> MixedProfile | None:
    """The exact certification gate of the two-phase pipeline.

    Returns ``candidate`` itself when it passes the exact support
    characterization, None otherwise.  Search backends (float or exact)
    must route every candidate through this gate after rational
    reconstruction; a None sends the caller back to the exact search
    path, so no approximate profile ever reaches :mod:`repro.core`.
    """
    return candidate if is_mixed_nash(game, candidate) else None


def certify_many(
    game: Game, candidates: Sequence[MixedProfile]
) -> list[MixedProfile | None]:
    """Batched exact certification: one lattice, many candidates.

    Returns one entry per candidate, in order — the candidate itself
    when it passes the exact Lemma-1 gate, ``None`` otherwise (exactly
    :func:`certify_mixed_profile` per element).  The point of the batch
    is amortization: all candidates of a game certify against the same
    pre-cleared integer payoff tensors — the lattice is cached on the
    game, so the first check pays the clearing and the rest are a few
    integer dot products each — which is how the support-enumeration
    certify stage and the service's batch paths keep per-candidate
    cost flat.
    """
    return [certify_mixed_profile(game, candidate) for candidate in candidates]


def is_epsilon_nash(game: Game, mixed: MixedProfile, epsilon) -> bool:
    """True iff no player can gain more than ``epsilon`` by deviating."""
    epsilon = to_fraction(epsilon)
    if epsilon < 0:
        return False
    return all(
        best_reply_gap(game, player, mixed) <= epsilon for player in game.players()
    )


def equilibrium_values(game: Game, mixed: MixedProfile) -> tuple[Fraction, ...]:
    """The per-player expected payoffs λ_1, ..., λ_n at ``mixed``.

    For a 2-player equilibrium these are exactly the (λ1, λ2) the P2
    prover transmits.
    """
    return tuple(game.expected_payoff(player, mixed) for player in game.players())
