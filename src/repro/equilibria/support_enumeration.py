"""Support enumeration for bimatrix games — a staged candidate engine.

This is the inventor-side computation whose *hardness* motivates the
paper: finding a mixed equilibrium is PPAD-complete in general, and the
honest-but-slow way to find all of them in a bimatrix game is to try every
support pair and decide feasibility of the equilibrium conditions.

For a support pair (S1, S2) the conditions are (Lemma 1's system, both
sides):

* y is a distribution supported within S2 making all rows in S1 earn a
  common value λ1 and all rows outside S1 earn at most λ1;
* x is a distribution supported within S1 making all columns in S2 earn
  a common value λ2 and all columns outside S2 earn at most λ2.

Each side is an LP feasibility question.  The search is organized as an
explicit four-stage pipeline::

    generate  →  screen  →  reconstruct  →  certify

**Generate** lists candidate support pairs in a fixed deterministic
order.  **Screen** decides, approximately and cheaply, which pairs can
possibly carry an equilibrium; it runs on a configurable
:class:`~repro.linalg.backend.NumericBackend` (the vectorized numpy
backend decides whole stacks of Lemma-1 systems at once; the stdlib
float backend screens one pair at a time, warm-starting from the
previous pair's basis when only one action changed) and can be sharded
across worker processes by a pluggable executor — workers return plain
picklable verdicts, nothing else.  **Reconstruct** re-solves surviving
candidates exactly (support-restricted, on the fraction-free integer
Bareiss kernel — bit-identical to Fraction elimination), always in the
calling process.  **Certify** passes each wave's reconstructions
through the exact Lemma-1 gate as one
:func:`~repro.equilibria.mixed.certify_many` batch — all candidates of
a wave share the game's cached integer-lattice payoffs — before
anything is returned; an inconclusive or uncertifiable screen verdict
falls back to the seed's exact LP for that pair, so no approximate
profile ever escapes and soundness is unconditional in every mode.  With the default exact backend there is no
screen at all: everything is Fractions end to end, exactly as the seed
behaved.

Determinism: support pairs, chunk boundaries and resolution order are
all fixed before any executor runs, so the returned equilibrium tuple is
identical for every worker count (serial included).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator, Sequence

from repro.equilibria.executors import make_executor
from repro.errors import BackendError, EquilibriumError, LinearAlgebraError
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.linalg.backend import (
    INCONCLUSIVE,
    NumericBackend,
    float_matrix,
    resolve_policy,
)
from repro.linalg.int_exact import solve_linear_system
from repro.linalg.int_lp import find_feasible_point

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: Support pairs screened per work chunk.  Fixed (policy-overridable but
#: never worker-count-dependent), so sharding cannot change results.
#: 1024 amortizes the vectorized screen's per-stack overhead while still
#: cutting a default-scale enumeration into enough shards to feed a
#: multi-core pool.
DEFAULT_CHUNK_SIZE = 1024


def _feasibility_rows(
    payoff_rows: Sequence[Sequence],
    own_support: tuple[int, ...],
    other_support: tuple[int, ...],
    zero,
    one,
) -> tuple[list, list, int]:
    """The Lemma-1 one-side feasibility system over any arithmetic.

    Variables: the mix q over ``other_support``, λ = λ⁺ - λ⁻ (free), and
    one slack per off-support action of ours.  Returns (rows, rhs,
    num_vars); ``zero``/``one`` select the arithmetic (Fraction or float).
    """
    num_own = len(payoff_rows)
    off_support = tuple(i for i in range(num_own) if i not in set(own_support))
    k = len(other_support)
    num_vars = k + 2 + len(off_support)  # q..., lam_plus, lam_minus, slacks...
    lam_plus = k
    lam_minus = k + 1
    rows: list[list] = []
    rhs: list = []

    # Supported actions: payoff(i) - λ = 0.
    for i in own_support:
        row = [zero] * num_vars
        for idx, j in enumerate(other_support):
            row[idx] = payoff_rows[i][j]
        row[lam_plus] = -one
        row[lam_minus] = one
        rows.append(row)
        rhs.append(zero)

    # Off-support actions: payoff(i) + slack = λ  (i.e. payoff(i) <= λ).
    for slack_idx, i in enumerate(off_support):
        row = [zero] * num_vars
        for idx, j in enumerate(other_support):
            row[idx] = payoff_rows[i][j]
        row[lam_plus] = -one
        row[lam_minus] = one
        row[k + 2 + slack_idx] = one
        rows.append(row)
        rhs.append(zero)

    # The mix is a probability distribution over the support.
    row = [zero] * num_vars
    for idx in range(k):
        row[idx] = one
    rows.append(row)
    rhs.append(one)
    return rows, rhs, num_vars


def _exact_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: tuple[int, ...],
    other_support: tuple[int, ...],
    num_other_actions: int,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """The seed path: exact LP feasibility, Fractions end to end."""
    rows, rhs, __ = _feasibility_rows(
        payoff_rows, own_support, other_support, _ZERO, _ONE
    )
    k = len(other_support)
    point = find_feasible_point(rows, rhs)
    if point is None:
        return None
    full_mix = [_ZERO] * num_other_actions
    for idx, j in enumerate(other_support):
        full_mix[j] = point[idx]
    value = point[k] - point[k + 1]
    return tuple(full_mix), value


def reconstruct_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: tuple[int, ...],
    refined_other: tuple[int, ...],
    num_other_actions: int,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """Exact support-restricted re-solve of a float candidate.

    Solves the *linear system* "all of ``own_support`` earns a common λ
    under a mix on ``refined_other`` summing to one" exactly (on the
    fraction-free integer Bareiss kernel — bit-identical to the seed's
    Fraction elimination, minus its per-step gcds), then checks the full
    Lemma-1 side conditions (probabilities in [0, 1], every
    off-``own_support`` action earning at most λ) with exact arithmetic.
    Returns None when the system is inconsistent, underdetermined, or the
    checks fail — the caller then falls back to the exact LP.

    This is shared certification infrastructure: both the support-
    enumeration screen and the Lemke-Howson float endpoint rebuild their
    candidates through it.
    """
    if not refined_other:
        return None
    k = len(refined_other)
    # Unknowns: q over refined_other, then λ (free sign — plain system).
    matrix: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for i in own_support:
        row = [payoff_rows[i][j] for j in refined_other]
        row.append(-_ONE)
        matrix.append(row)
        rhs.append(_ZERO)
    matrix.append([_ONE] * k + [_ZERO])
    rhs.append(_ONE)
    try:
        particular, basis = solve_linear_system(matrix, rhs)
    except LinearAlgebraError:
        return None
    if basis:
        return None  # underdetermined: let the exact LP pick a vertex
    q = particular[:k]
    value = particular[k]
    if any(p < 0 or p > 1 for p in q):
        return None
    full_mix = [_ZERO] * num_other_actions
    for idx, j in enumerate(refined_other):
        full_mix[j] = q[idx]
    own = set(own_support)
    for i in range(len(payoff_rows)):
        if i in own:
            continue
        earned = sum(
            (payoff_rows[i][j] * full_mix[j] for j in refined_other), start=_ZERO
        )
        if earned > value:
            return None
    return tuple(full_mix), value


def solve_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: Sequence[int],
    other_support: Sequence[int],
    num_other_actions: int,
    backend: NumericBackend | None = None,
    float_rows: Sequence[Sequence[float]] | None = None,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """Find the *other* player's mix that makes ``own_support`` optimal.

    ``payoff_rows[i][j]`` is our payoff for our action i against the other
    player's action j.  Returns ``(full_mix, value)`` where ``full_mix``
    is the other player's distribution (length ``num_other_actions``) and
    ``value`` is our common supported payoff λ — or None if infeasible.
    The returned values are always exact Fractions, whatever ``backend``
    the search phase ran on; ``float_rows`` optionally carries a
    pre-converted float copy of ``payoff_rows`` so enumeration loops do
    not re-convert the payoff matrix per support pair.
    """
    own_support = tuple(own_support)
    other_support = tuple(other_support)
    if not own_support or not other_support:
        return None

    if backend is not None and not backend.exact:
        if float_rows is None:
            float_rows = float_matrix(payoff_rows)
        rows, rhs, __ = _feasibility_rows(
            float_rows, own_support, other_support, 0.0, 1.0
        )
        try:
            point = backend.find_feasible_point(rows, rhs)
        except BackendError:
            point = None
            inconclusive = True
        else:
            inconclusive = False
            if point is None:
                return None  # confidently infeasible — pruned
        if not inconclusive:
            support_tol = backend.support_tol
            refined = tuple(
                j for idx, j in enumerate(other_support)
                if point[idx] > support_tol
            )
            reconstructed = reconstruct_one_side(
                payoff_rows, own_support, refined, num_other_actions
            )
            if reconstructed is not None:
                return reconstructed
        # Inconclusive float answer or failed certification: exact path.
    return _exact_one_side(
        payoff_rows, own_support, other_support, num_other_actions
    )


def equilibrium_for_supports(
    game: BimatrixGame,
    row_support: Sequence[int],
    col_support: Sequence[int],
    backend: NumericBackend | None = None,
    _float_cache: tuple | None = None,
) -> tuple[MixedProfile, Fraction, Fraction] | None:
    """One exact equilibrium with the given supports, or None.

    Returns ``(profile, λ1, λ2)``.  The returned profile's supports may be
    *subsets* of the requested ones (a feasible point may put zero weight
    on a requested action); callers that need support-exact equilibria
    should compare :meth:`MixedProfile.supports`.  Whatever the search
    backend, the returned profile is exact (see :func:`solve_one_side`).
    """
    a = game.row_matrix
    b_cols = game.column_matrix_transposed
    n, m = game.action_counts
    a_float, b_cols_float = _float_cache if _float_cache else (None, None)

    # The column mix y makes the row support indifferent (uses A).
    y_solution = solve_one_side(
        a, row_support, col_support, m, backend=backend, float_rows=a_float
    )
    if y_solution is None:
        return None
    # The row mix x makes the column support indifferent (uses B columns).
    x_solution = solve_one_side(
        b_cols, col_support, row_support, n, backend=backend,
        float_rows=b_cols_float,
    )
    if x_solution is None:
        return None

    y, lambda1 = y_solution
    x, lambda2 = x_solution
    profile = MixedProfile((x, y))
    return profile, lambda1, lambda2


def support_pairs(
    n: int, m: int, equal_size_only: bool = False
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All candidate support pairs, smallest first (deterministic order)."""
    row_supports = [
        combo
        for size in range(1, n + 1)
        for combo in itertools.combinations(range(n), size)
    ]
    col_supports = [
        combo
        for size in range(1, m + 1)
        for combo in itertools.combinations(range(m), size)
    ]
    for rs in row_supports:
        for cs in col_supports:
            if equal_size_only and len(rs) != len(cs):
                continue
            yield rs, cs


def _search_setup(game: BimatrixGame, policy):
    """Resolve the policy to a backend and float payoff caches."""
    n, m = game.action_counts
    backend = resolve_policy(policy).search_backend(n + m)
    if backend.exact:
        return None, None
    cache = (
        float_matrix(game.row_matrix),
        float_matrix(game.column_matrix_transposed),
    )
    return backend, cache


def _certified(game: BimatrixGame, profile: MixedProfile) -> bool:
    """The exact certification gate every search candidate passes through."""
    from repro.equilibria.mixed import certify_mixed_profile

    return certify_mixed_profile(game, profile) is not None


def _reconstruct_candidate(game: BimatrixGame, rs, cs, verdict):
    """Stage 3 for one SCREEN_CANDIDATE verdict: the exact profile, or None.

    Exact support-restricted re-solves of both Lemma-1 sides on the
    refined supports the screen suggested; ``None`` (either side
    inconsistent, underdetermined, or side-condition-violating) sends
    the pair to the authoritative exact LP.
    """
    __, refined_cols, refined_rows = verdict
    n, m = game.action_counts
    y_side = reconstruct_one_side(game.row_matrix, rs, refined_cols, m)
    if y_side is None:
        return None
    x_side = reconstruct_one_side(
        game.column_matrix_transposed, cs, refined_rows, n
    )
    if x_side is None:
        return None
    return MixedProfile((x_side[0], y_side[0]))


# ----------------------------------------------------------------------
# Stage 2: the approximate screen (runs in workers when sharded)
# ----------------------------------------------------------------------

#: Screen verdict codes — plain ints so chunk results pickle trivially.
SCREEN_PRUNED = 0      # confidently infeasible: drop the pair
SCREEN_CANDIDATE = 1   # feasible both sides: carries refined supports
SCREEN_EXACT = 2       # inconclusive: re-decide the pair exactly


def _variable_keys(num_own: int, own_support, other_support):
    """Stable identities for one side-system's columns.

    Basis reuse across neighbouring support pairs needs to know which
    column in the *new* system corresponds to a basic column of the
    *old* one; position is meaningless across systems, so columns are
    keyed by meaning: the mix variable of an opponent action, λ⁺/λ⁻, or
    the slack of one of our off-support actions.
    """
    keys = [("q", j) for j in other_support]
    keys.append(("L", "+"))
    keys.append(("L", "-"))
    own = set(own_support)
    keys.extend(("s", i) for i in range(num_own) if i not in own)
    return keys


def _one_action_apart(prev_own, prev_other, own, other) -> bool:
    """True when at most one action was added, removed, or swapped."""
    delta = len(set(prev_own) ^ set(own)) + len(set(prev_other) ^ set(other))
    return delta <= 2


class _SideScreener:
    """Sequential one-side screening with warm-started bases.

    Used on backends without a batched screen (the stdlib float
    backend).  After each feasible pair the final simplex basis is
    remembered under the column keys of :func:`_variable_keys`; when the
    next pair is at most one action away, the old basis is remapped onto
    the new system (swapped actions substitute for each other) and tried
    as a crash basis — one small square solve instead of a full phase-1
    run.  Any miss falls back to the cold screen, so warm starts change
    cost, never verdicts' soundness.
    """

    def __init__(self, backend: NumericBackend, float_rows):
        self._backend = backend
        self._rows = float_rows
        self._num_own = len(float_rows)
        self._prev = None  # (own, other, basis_keys)

    def _warm_columns(self, own, other, keys):
        if self._prev is None:
            return None
        # Underdetermined sides (fewer indifference equations than mix
        # variables) have many feasible vertices; a warm basis may land
        # on a different one than the cold simplex, which on degenerate
        # games changes *which* exact equilibrium the pair yields.  Warm
        # starts are therefore restricted to sides whose Lemma-1 system
        # generically pins a unique mix — there, any feasible point is
        # the same point, and reuse changes cost but never answers.
        if len(own) < len(other):
            return None
        prev_own, prev_other, prev_keys = self._prev
        if not prev_keys or not _one_action_apart(prev_own, prev_other, own, other):
            return None
        # Swapped actions map onto each other, kind for kind.
        swaps = {}
        gone_q = sorted(set(prev_other) - set(other))
        new_q = sorted(set(other) - set(prev_other))
        if len(gone_q) == len(new_q):
            swaps.update(
                {("q", g): ("q", a) for g, a in zip(gone_q, new_q)}
            )
        prev_off = set(range(self._num_own)) - set(prev_own)
        off = set(range(self._num_own)) - set(own)
        gone_s = sorted(prev_off - off)
        new_s = sorted(off - prev_off)
        if len(gone_s) == len(new_s):
            swaps.update(
                {("s", g): ("s", a) for g, a in zip(gone_s, new_s)}
            )
        key_to_col = {key: col for col, key in enumerate(keys)}
        columns = []
        for key in prev_keys:
            if key not in key_to_col:
                key = swaps.get(key)
                if key is None or key not in key_to_col:
                    return None
            columns.append(key_to_col[key])
        return columns

    def screen(self, own, other):
        """Feasible point, ``None``, or :data:`INCONCLUSIVE` for one side."""
        rows, rhs, __ = _feasibility_rows(self._rows, own, other, 0.0, 1.0)
        keys = _variable_keys(self._num_own, own, other)
        warm_columns = self._warm_columns(own, other, keys)
        if warm_columns is not None:
            point = self._backend.try_basis(rows, rhs, warm_columns)
            if point is not None:
                self._prev = (own, other, [keys[c] for c in warm_columns])
                return point
        try:
            solved = self._backend.find_feasible_basis(rows, rhs)
        except BackendError:
            self._prev = None
            return INCONCLUSIVE
        if solved is None:
            self._prev = None
            return None
        point, basis_columns = solved
        self._prev = (own, other, [keys[c] for c in basis_columns])
        return point


def _refine(point, other_support, support_tol):
    """The support a screened feasible point actually stands on."""
    return tuple(
        j for idx, j in enumerate(other_support) if point[idx] > support_tol
    )


def _triage(y_point, x_point, rs, cs, support_tol):
    """Map one pair's two side-points to a screen verdict.

    Shared by the batched and scalar screens so the verdict encoding
    cannot diverge between them.  ``x_point`` may be omitted (None is
    ambiguous, so the caller passes it only when the y-side survived).
    """
    if y_point is None or x_point is None:
        return (SCREEN_PRUNED,)
    if y_point is INCONCLUSIVE or x_point is INCONCLUSIVE:
        return (SCREEN_EXACT,)
    return (
        SCREEN_CANDIDATE,
        _refine(y_point, cs, support_tol),
        _refine(x_point, rs, support_tol),
    )


def screen_support_chunk(payload):
    """Screen one chunk of support pairs; plain data in, plain data out.

    ``payload`` is ``(backend, a_float, b_cols_float, pairs)``.  Returns
    one verdict per pair, in order: ``(SCREEN_PRUNED,)``,
    ``(SCREEN_CANDIDATE, refined_cols, refined_rows)`` or
    ``(SCREEN_EXACT,)``.  This is the sharding unit — it is a top-level
    function over picklable values so a process pool can run it, and it
    performs no exact arithmetic at all: certification never leaves the
    parent process.

    Backends with a batched screen decide all y-sides of the chunk in
    one stack, then all x-sides of the survivors in another; scalar
    backends screen pair by pair with warm-started bases.
    """
    backend, a_float, b_cols_float, pairs = payload
    support_tol = backend.support_tol
    if getattr(backend, "batched_screen", False):
        y_systems = [
            _feasibility_rows(a_float, rs, cs, 0.0, 1.0)[:2] for rs, cs in pairs
        ]
        y_points = backend.screen_feasible(y_systems)
        survivors = [
            idx for idx, point in enumerate(y_points)
            if point is not None and point is not INCONCLUSIVE
        ]
        x_systems = [
            _feasibility_rows(
                b_cols_float, pairs[idx][1], pairs[idx][0], 0.0, 1.0
            )[:2]
            for idx in survivors
        ]
        x_points = dict(zip(survivors, backend.screen_feasible(x_systems)))
        return [
            _triage(
                y_points[idx],
                x_points.get(idx, INCONCLUSIVE) if y_points[idx] is not None
                else None,
                rs, cs, support_tol,
            )
            for idx, (rs, cs) in enumerate(pairs)
        ]

    y_screener = _SideScreener(backend, a_float)
    x_screener = _SideScreener(backend, b_cols_float)
    verdicts = []
    for rs, cs in pairs:
        y_point = y_screener.screen(rs, cs)
        x_point = None
        if y_point is not None and y_point is not INCONCLUSIVE:
            x_point = x_screener.screen(cs, rs)
        elif y_point is INCONCLUSIVE:
            x_point = INCONCLUSIVE  # the pair is exact-bound either way
        verdicts.append(_triage(y_point, x_point, rs, cs, support_tol))
    return verdicts


# ----------------------------------------------------------------------
# Stages 3 + 4: exact reconstruction and certification (parent only)
# ----------------------------------------------------------------------


def _resolve_screened_pair(game, rs, cs, verdict):
    """Turn one screen verdict into an exact result (or None).

    Everything here is Fractions: candidates reconstruct through the
    support-restricted exact re-solve and pass the Lemma-1 gate; any
    failure — and any inconclusive screen — re-decides the pair on the
    seed's exact LP.  Pruned pairs were rejected with a clear margin and
    cost nothing further.
    """
    if verdict[0] == SCREEN_PRUNED:
        return None
    if verdict[0] == SCREEN_CANDIDATE:
        profile = _reconstruct_candidate(game, rs, cs, verdict)
        if profile is not None and _certified(game, profile):
            return profile
        # Reconstruction or certification failed: the screen suggested
        # supports the exact side conditions reject.  Fall through to
        # the authoritative exact decision for this pair.
    result = equilibrium_for_supports(game, rs, cs)
    return result[0] if result is not None else None


#: Chunk size for *scalar* screening when only the first hit matters:
#: a lazy scan usually resolves within the first few pairs, so big
#: chunks would screen ~1000 pairs it never looks at.  The vectorized
#: screen keeps DEFAULT_CHUNK_SIZE — stack width is its whole speedup.
SCALAR_FIND_CHUNK_SIZE = 16


def _screened_verdict_waves(game, backend, pair_stream, chunk_size, executor):
    """Stream screened waves ``[((rs, cs), verdict), ...]`` in pair order.

    Pairs come off the generator wave by wave (one chunk per worker, a
    single chunk when serial), so the exponential pair space is never
    materialized and memory is bounded by the in-flight wave.  Chunk
    boundaries depend only on ``chunk_size``, and verdicts are yielded
    strictly in pair order whatever the pool's completion order — the
    two determinism invariants callers rely on.  Yielding whole waves
    (rather than single pairs) lets the enumeration certify each wave's
    surviving candidates as one batch.
    """
    a_float = float_matrix(game.row_matrix)
    b_cols_float = float_matrix(game.column_matrix_transposed)
    wave_width = max(1, getattr(executor, "workers", 1)) if executor else 1
    while True:
        wave = [
            chunk
            for chunk in (
                list(itertools.islice(pair_stream, chunk_size))
                for __ in range(wave_width)
            )
            if chunk
        ]
        if not wave:
            return
        payloads = [(backend, a_float, b_cols_float, chunk) for chunk in wave]
        if executor is None:
            verdict_lists = [
                screen_support_chunk(payload) for payload in payloads
            ]
        else:
            verdict_lists = executor.map_chunks(screen_support_chunk, payloads)
        yield [
            pair_verdict
            for chunk, verdicts in zip(wave, verdict_lists)
            for pair_verdict in zip(chunk, verdicts)
        ]


def _screened_pairs(game, backend, pair_stream, chunk_size, executor):
    """Flattened :func:`_screened_verdict_waves` (for first-hit scans)."""
    for wave in _screened_verdict_waves(
        game, backend, pair_stream, chunk_size, executor
    ):
        yield from wave


def _resolve_screened_wave(game, wave, seen, out):
    """Stages 3+4 for one wave: batch-certify, then resolve in pair order.

    All of the wave's SCREEN_CANDIDATE verdicts are reconstructed first
    and certified through one :func:`~repro.equilibria.mixed.certify_many`
    batch (one integer-lattice resolution for the whole wave); pairs
    whose candidate failed either step — and every SCREEN_EXACT pair —
    are then re-decided by the authoritative exact LP, strictly in pair
    order, so results are identical to the pair-at-a-time path.
    """
    from repro.equilibria.mixed import certify_many

    candidates: list[MixedProfile] = []
    candidate_of: dict[int, int] = {}
    for idx, ((rs, cs), verdict) in enumerate(wave):
        if verdict[0] == SCREEN_CANDIDATE:
            profile = _reconstruct_candidate(game, rs, cs, verdict)
            if profile is not None:
                candidate_of[idx] = len(candidates)
                candidates.append(profile)
    certified = certify_many(game, candidates)
    for idx, ((rs, cs), verdict) in enumerate(wave):
        if verdict[0] == SCREEN_PRUNED:
            continue
        profile = None
        slot = candidate_of.get(idx)
        if slot is not None:
            profile = certified[slot]
        if profile is None:
            # Inconclusive screen, failed reconstruction, or failed
            # certification: the exact LP decides the pair.
            result = equilibrium_for_supports(game, rs, cs)
            profile = result[0] if result is not None else None
        if profile is not None and profile.distributions not in seen:
            seen.add(profile.distributions)
            out.append(profile)


def support_enumeration(
    game: BimatrixGame,
    equal_size_only: bool = False,
    policy=None,
    executor=None,
) -> tuple[MixedProfile, ...]:
    """All equilibria found by support enumeration, deduplicated.

    With ``equal_size_only`` the search restricts to equal-cardinality
    supports — complete for non-degenerate games and much faster; the
    default scans every pair, which also picks up degenerate equilibria
    such as the Fig. 5 continuum's extreme points.

    ``policy`` selects the numeric search backend and sharding
    (``None``/"exact" is the seed behaviour; "float+certify" screens
    support pairs one at a time in float64; "numpy" screens whole stacks
    of pairs vectorized; "sharded" additionally fans screening chunks
    across worker processes).  ``executor`` optionally supplies a live
    :class:`~repro.equilibria.executors.ShardedExecutor` so a stream of
    enumeration runs (e.g. a batch consultation) shares one worker pool;
    when omitted, the policy's worker count decides and any pool is
    scoped to this call.

    Soundness is unconditional in every mode: nothing uncertified is
    ever returned, and exact certification runs only in the calling
    process.  *Completeness* of the approximate screens is heuristic:
    they row-equilibrate and treat only clear margins as infeasible
    (anything borderline is re-decided exactly), but a knife-edge
    support pair whose feasibility margin sits below float resolution
    can in principle be pruned.  Callers that must not miss any
    equilibrium use the exact policy.  Results are deterministic for
    every worker count.
    """
    resolved = resolve_policy(policy)
    backend, __ = _search_setup(game, resolved)
    n, m = game.action_counts
    seen: set[tuple] = set()
    out: list[MixedProfile] = []

    if backend is None:
        # The seed path: exact LP per pair, no screen, no executor, and
        # no materialization — pairs stream straight off the generator.
        for rs, cs in support_pairs(n, m, equal_size_only=equal_size_only):
            result = equilibrium_for_supports(game, rs, cs)
            if result is None:
                continue
            profile = result[0]
            if profile.distributions not in seen:
                seen.add(profile.distributions)
                out.append(profile)
        return tuple(out)

    chunk_size = resolved.chunk_size or DEFAULT_CHUNK_SIZE
    pair_stream = support_pairs(n, m, equal_size_only=equal_size_only)
    own_executor = executor is None
    if own_executor and resolved.resolved_workers() > 1:
        executor = make_executor(resolved.resolved_workers())
    try:
        for wave in _screened_verdict_waves(
            game, backend, pair_stream, chunk_size, executor
        ):
            _resolve_screened_wave(game, wave, seen, out)
    finally:
        if own_executor and executor is not None:
            executor.close()
    return tuple(out)


def find_one_equilibrium(
    game: BimatrixGame, policy=None, executor=None
) -> MixedProfile:
    """The first equilibrium support enumeration finds (smallest support).

    Every finite game has one (Nash 1950), so exhausting the support pairs
    without a hit indicates an internal error — or, on an approximate
    search backend, an over-aggressive screen; in that case the scan is
    repeated on the exact path before concluding anything.

    Screening is chunked and *lazy*: pairs stream off the generator one
    wave at a time and the scan stops inside the first wave containing a
    certified equilibrium, so the exponential pair space is never
    materialized.  With a sharded ``executor`` (or a policy asking for
    one) each wave fans one chunk per worker across the pool; candidates
    are still resolved strictly in pair order, so the returned
    equilibrium is identical for every worker count — wave width only
    changes how much screening beyond the answer is wasted.
    """
    resolved = resolve_policy(policy)
    backend, __ = _search_setup(game, resolved)
    n, m = game.action_counts
    if backend is None:
        for rs, cs in support_pairs(n, m):
            result = equilibrium_for_supports(game, rs, cs)
            if result is not None:
                return result[0]
        raise EquilibriumError(
            "support enumeration found no equilibrium; "
            "this contradicts Nash's theorem"
        )

    if resolved.chunk_size:
        chunk_size = resolved.chunk_size
    elif backend.batched_screen:
        chunk_size = DEFAULT_CHUNK_SIZE
    else:
        chunk_size = SCALAR_FIND_CHUNK_SIZE
    pair_stream = support_pairs(n, m)
    own_executor = executor is None
    if own_executor and resolved.resolved_workers() > 1:
        executor = make_executor(resolved.resolved_workers())
    try:
        for (rs, cs), verdict in _screened_pairs(
            game, backend, pair_stream, chunk_size, executor
        ):
            profile = _resolve_screened_pair(game, rs, cs, verdict)
            if profile is not None:
                return profile
    finally:
        if own_executor and executor is not None:
            executor.close()
    # The approximate screen may have pruned a knife-edge support pair;
    # the exact rescan is the authoritative answer.
    return find_one_equilibrium(game)
