"""Support enumeration for bimatrix games — exact, exhaustive, slow.

This is the inventor-side computation whose *hardness* motivates the
paper: finding a mixed equilibrium is PPAD-complete in general, and the
honest-but-slow way to find all of them in a bimatrix game is to try every
support pair and decide feasibility of the equilibrium conditions.

For a support pair (S1, S2) the conditions are (Lemma 1's system, both
sides):

* y is a distribution supported within S2 making all rows in S1 earn a
  common value λ1 and all rows outside S1 earn at most λ1;
* x is a distribution supported within S1 making all columns in S2 earn
  a common value λ2 and all columns outside S2 earn at most λ2.

Each side is an exact LP feasibility question solved with
:mod:`repro.linalg.lp`.  Everything is Fractions end to end, so returned
equilibria verify *exactly*.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator, Sequence

from repro.errors import EquilibriumError
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.linalg.lp import find_feasible_point

_ZERO = Fraction(0)
_ONE = Fraction(1)


def solve_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: Sequence[int],
    other_support: Sequence[int],
    num_other_actions: int,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """Find the *other* player's mix that makes ``own_support`` optimal.

    ``payoff_rows[i][j]`` is our payoff for our action i against the other
    player's action j.  Returns ``(full_mix, value)`` where ``full_mix``
    is the other player's distribution (length ``num_other_actions``) and
    ``value`` is our common supported payoff λ — or None if infeasible.

    Variables of the feasibility LP: the mix q over ``other_support``,
    λ = λ⁺ - λ⁻ (free), and one slack per off-support action of ours.
    """
    own_support = tuple(own_support)
    other_support = tuple(other_support)
    num_own = len(payoff_rows)
    if not own_support or not other_support:
        return None
    off_support = tuple(i for i in range(num_own) if i not in set(own_support))

    k = len(other_support)
    num_vars = k + 2 + len(off_support)  # q..., lam_plus, lam_minus, slacks...
    lam_plus = k
    lam_minus = k + 1
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []

    # Supported actions: payoff(i) - λ = 0.
    for i in own_support:
        row = [_ZERO] * num_vars
        for idx, j in enumerate(other_support):
            row[idx] = payoff_rows[i][j]
        row[lam_plus] = -_ONE
        row[lam_minus] = _ONE
        rows.append(row)
        rhs.append(_ZERO)

    # Off-support actions: payoff(i) + slack = λ  (i.e. payoff(i) <= λ).
    for slack_idx, i in enumerate(off_support):
        row = [_ZERO] * num_vars
        for idx, j in enumerate(other_support):
            row[idx] = payoff_rows[i][j]
        row[lam_plus] = -_ONE
        row[lam_minus] = _ONE
        row[k + 2 + slack_idx] = _ONE
        rows.append(row)
        rhs.append(_ZERO)

    # The mix is a probability distribution over the support.
    row = [_ZERO] * num_vars
    for idx in range(k):
        row[idx] = _ONE
    rows.append(row)
    rhs.append(_ONE)

    point = find_feasible_point(rows, rhs)
    if point is None:
        return None
    full_mix = [_ZERO] * num_other_actions
    for idx, j in enumerate(other_support):
        full_mix[j] = point[idx]
    value = point[lam_plus] - point[lam_minus]
    return tuple(full_mix), value


def equilibrium_for_supports(
    game: BimatrixGame,
    row_support: Sequence[int],
    col_support: Sequence[int],
) -> tuple[MixedProfile, Fraction, Fraction] | None:
    """One exact equilibrium with the given supports, or None.

    Returns ``(profile, λ1, λ2)``.  The returned profile's supports may be
    *subsets* of the requested ones (a feasible point may put zero weight
    on a requested action); callers that need support-exact equilibria
    should compare :meth:`MixedProfile.supports`.
    """
    a = game.row_matrix
    b = game.column_matrix
    n, m = game.action_counts

    # The column mix y makes the row support indifferent (uses A).
    y_solution = solve_one_side(a, row_support, col_support, m)
    if y_solution is None:
        return None
    # The row mix x makes the column support indifferent (uses B columns).
    b_cols = tuple(tuple(b[i][j] for i in range(n)) for j in range(m))
    x_solution = solve_one_side(b_cols, col_support, row_support, n)
    if x_solution is None:
        return None

    y, lambda1 = y_solution
    x, lambda2 = x_solution
    profile = MixedProfile((x, y))
    return profile, lambda1, lambda2


def support_pairs(
    n: int, m: int, equal_size_only: bool = False
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All candidate support pairs, smallest first (deterministic order)."""
    row_supports = [
        combo
        for size in range(1, n + 1)
        for combo in itertools.combinations(range(n), size)
    ]
    col_supports = [
        combo
        for size in range(1, m + 1)
        for combo in itertools.combinations(range(m), size)
    ]
    for rs in row_supports:
        for cs in col_supports:
            if equal_size_only and len(rs) != len(cs):
                continue
            yield rs, cs


def support_enumeration(
    game: BimatrixGame, equal_size_only: bool = False
) -> tuple[MixedProfile, ...]:
    """All equilibria found by support enumeration, deduplicated.

    With ``equal_size_only`` the search restricts to equal-cardinality
    supports — complete for non-degenerate games and much faster; the
    default scans every pair, which also picks up degenerate equilibria
    such as the Fig. 5 continuum's extreme points.
    """
    seen: set[tuple] = set()
    out: list[MixedProfile] = []
    n, m = game.action_counts
    for rs, cs in support_pairs(n, m, equal_size_only=equal_size_only):
        result = equilibrium_for_supports(game, rs, cs)
        if result is None:
            continue
        profile, __, __ = result
        key = profile.distributions
        if key not in seen:
            seen.add(key)
            out.append(profile)
    return tuple(out)


def find_one_equilibrium(game: BimatrixGame) -> MixedProfile:
    """The first equilibrium support enumeration finds (smallest support).

    Every finite game has one (Nash 1950), so exhausting the support pairs
    without a hit indicates an internal error.
    """
    n, m = game.action_counts
    for rs, cs in support_pairs(n, m):
        result = equilibrium_for_supports(game, rs, cs)
        if result is not None:
            return result[0]
    raise EquilibriumError(
        "support enumeration found no equilibrium; this contradicts Nash's theorem"
    )
