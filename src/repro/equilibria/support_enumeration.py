"""Support enumeration for bimatrix games — exact answers, pluggable search.

This is the inventor-side computation whose *hardness* motivates the
paper: finding a mixed equilibrium is PPAD-complete in general, and the
honest-but-slow way to find all of them in a bimatrix game is to try every
support pair and decide feasibility of the equilibrium conditions.

For a support pair (S1, S2) the conditions are (Lemma 1's system, both
sides):

* y is a distribution supported within S2 making all rows in S1 earn a
  common value λ1 and all rows outside S1 earn at most λ1;
* x is a distribution supported within S1 making all columns in S2 earn
  a common value λ2 and all columns outside S2 earn at most λ2.

Each side is an LP feasibility question.  The *search* for a feasible
point runs on a configurable :class:`~repro.linalg.backend.NumericBackend`
(two-phase pipeline): with the default exact backend everything is
Fractions end to end, exactly as the seed behaved; with a float backend
the feasibility screen runs in float64, positive candidates are
reconstructed as Fractions by a support-restricted exact re-solve, and
every reconstruction is checked against the exact Lemma-1 conditions
before it is returned — an inconclusive or uncertifiable float answer
falls back to the exact LP, so no approximate profile ever escapes.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator, Sequence

from repro.errors import BackendError, EquilibriumError, LinearAlgebraError
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.linalg.backend import NumericBackend, float_matrix, resolve_policy
from repro.linalg.exact import solve_linear_system
from repro.linalg.lp import find_feasible_point

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: Fallback support threshold for backends that do not define one.
_SUPPORT_TOL = 1e-7


def _feasibility_rows(
    payoff_rows: Sequence[Sequence],
    own_support: tuple[int, ...],
    other_support: tuple[int, ...],
    zero,
    one,
) -> tuple[list, list, int]:
    """The Lemma-1 one-side feasibility system over any arithmetic.

    Variables: the mix q over ``other_support``, λ = λ⁺ - λ⁻ (free), and
    one slack per off-support action of ours.  Returns (rows, rhs,
    num_vars); ``zero``/``one`` select the arithmetic (Fraction or float).
    """
    num_own = len(payoff_rows)
    off_support = tuple(i for i in range(num_own) if i not in set(own_support))
    k = len(other_support)
    num_vars = k + 2 + len(off_support)  # q..., lam_plus, lam_minus, slacks...
    lam_plus = k
    lam_minus = k + 1
    rows: list[list] = []
    rhs: list = []

    # Supported actions: payoff(i) - λ = 0.
    for i in own_support:
        row = [zero] * num_vars
        for idx, j in enumerate(other_support):
            row[idx] = payoff_rows[i][j]
        row[lam_plus] = -one
        row[lam_minus] = one
        rows.append(row)
        rhs.append(zero)

    # Off-support actions: payoff(i) + slack = λ  (i.e. payoff(i) <= λ).
    for slack_idx, i in enumerate(off_support):
        row = [zero] * num_vars
        for idx, j in enumerate(other_support):
            row[idx] = payoff_rows[i][j]
        row[lam_plus] = -one
        row[lam_minus] = one
        row[k + 2 + slack_idx] = one
        rows.append(row)
        rhs.append(zero)

    # The mix is a probability distribution over the support.
    row = [zero] * num_vars
    for idx in range(k):
        row[idx] = one
    rows.append(row)
    rhs.append(one)
    return rows, rhs, num_vars


def _exact_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: tuple[int, ...],
    other_support: tuple[int, ...],
    num_other_actions: int,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """The seed path: exact LP feasibility, Fractions end to end."""
    rows, rhs, __ = _feasibility_rows(
        payoff_rows, own_support, other_support, _ZERO, _ONE
    )
    k = len(other_support)
    point = find_feasible_point(rows, rhs)
    if point is None:
        return None
    full_mix = [_ZERO] * num_other_actions
    for idx, j in enumerate(other_support):
        full_mix[j] = point[idx]
    value = point[k] - point[k + 1]
    return tuple(full_mix), value


def reconstruct_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: tuple[int, ...],
    refined_other: tuple[int, ...],
    num_other_actions: int,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """Exact support-restricted re-solve of a float candidate.

    Solves the *linear system* "all of ``own_support`` earns a common λ
    under a mix on ``refined_other`` summing to one" exactly, then checks
    the full Lemma-1 side conditions (probabilities in [0, 1], every
    off-``own_support`` action earning at most λ) with exact arithmetic.
    Returns None when the system is inconsistent, underdetermined, or the
    checks fail — the caller then falls back to the exact LP.

    This is shared certification infrastructure: both the support-
    enumeration screen and the Lemke-Howson float endpoint rebuild their
    candidates through it.
    """
    if not refined_other:
        return None
    k = len(refined_other)
    # Unknowns: q over refined_other, then λ (free sign — plain system).
    matrix: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for i in own_support:
        row = [payoff_rows[i][j] for j in refined_other]
        row.append(-_ONE)
        matrix.append(row)
        rhs.append(_ZERO)
    matrix.append([_ONE] * k + [_ZERO])
    rhs.append(_ONE)
    try:
        particular, basis = solve_linear_system(matrix, rhs)
    except LinearAlgebraError:
        return None
    if basis:
        return None  # underdetermined: let the exact LP pick a vertex
    q = particular[:k]
    value = particular[k]
    if any(p < 0 or p > 1 for p in q):
        return None
    full_mix = [_ZERO] * num_other_actions
    for idx, j in enumerate(refined_other):
        full_mix[j] = q[idx]
    own = set(own_support)
    for i in range(len(payoff_rows)):
        if i in own:
            continue
        earned = sum(
            (payoff_rows[i][j] * full_mix[j] for j in refined_other), start=_ZERO
        )
        if earned > value:
            return None
    return tuple(full_mix), value


def solve_one_side(
    payoff_rows: Sequence[Sequence[Fraction]],
    own_support: Sequence[int],
    other_support: Sequence[int],
    num_other_actions: int,
    backend: NumericBackend | None = None,
    float_rows: Sequence[Sequence[float]] | None = None,
) -> tuple[tuple[Fraction, ...], Fraction] | None:
    """Find the *other* player's mix that makes ``own_support`` optimal.

    ``payoff_rows[i][j]`` is our payoff for our action i against the other
    player's action j.  Returns ``(full_mix, value)`` where ``full_mix``
    is the other player's distribution (length ``num_other_actions``) and
    ``value`` is our common supported payoff λ — or None if infeasible.
    The returned values are always exact Fractions, whatever ``backend``
    the search phase ran on; ``float_rows`` optionally carries a
    pre-converted float copy of ``payoff_rows`` so enumeration loops do
    not re-convert the payoff matrix per support pair.
    """
    own_support = tuple(own_support)
    other_support = tuple(other_support)
    if not own_support or not other_support:
        return None

    if backend is not None and not backend.exact:
        if float_rows is None:
            float_rows = float_matrix(payoff_rows)
        rows, rhs, __ = _feasibility_rows(
            float_rows, own_support, other_support, 0.0, 1.0
        )
        try:
            point = backend.find_feasible_point(rows, rhs)
        except BackendError:
            point = None
            inconclusive = True
        else:
            inconclusive = False
            if point is None:
                return None  # confidently infeasible — pruned
        if not inconclusive:
            support_tol = getattr(backend, "support_tol", _SUPPORT_TOL)
            refined = tuple(
                j for idx, j in enumerate(other_support)
                if point[idx] > support_tol
            )
            reconstructed = reconstruct_one_side(
                payoff_rows, own_support, refined, num_other_actions
            )
            if reconstructed is not None:
                return reconstructed
        # Inconclusive float answer or failed certification: exact path.
    return _exact_one_side(
        payoff_rows, own_support, other_support, num_other_actions
    )


def equilibrium_for_supports(
    game: BimatrixGame,
    row_support: Sequence[int],
    col_support: Sequence[int],
    backend: NumericBackend | None = None,
    _float_cache: tuple | None = None,
) -> tuple[MixedProfile, Fraction, Fraction] | None:
    """One exact equilibrium with the given supports, or None.

    Returns ``(profile, λ1, λ2)``.  The returned profile's supports may be
    *subsets* of the requested ones (a feasible point may put zero weight
    on a requested action); callers that need support-exact equilibria
    should compare :meth:`MixedProfile.supports`.  Whatever the search
    backend, the returned profile is exact (see :func:`solve_one_side`).
    """
    a = game.row_matrix
    b_cols = game.column_matrix_transposed
    n, m = game.action_counts
    a_float, b_cols_float = _float_cache if _float_cache else (None, None)

    # The column mix y makes the row support indifferent (uses A).
    y_solution = solve_one_side(
        a, row_support, col_support, m, backend=backend, float_rows=a_float
    )
    if y_solution is None:
        return None
    # The row mix x makes the column support indifferent (uses B columns).
    x_solution = solve_one_side(
        b_cols, col_support, row_support, n, backend=backend,
        float_rows=b_cols_float,
    )
    if x_solution is None:
        return None

    y, lambda1 = y_solution
    x, lambda2 = x_solution
    profile = MixedProfile((x, y))
    return profile, lambda1, lambda2


def support_pairs(
    n: int, m: int, equal_size_only: bool = False
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All candidate support pairs, smallest first (deterministic order)."""
    row_supports = [
        combo
        for size in range(1, n + 1)
        for combo in itertools.combinations(range(n), size)
    ]
    col_supports = [
        combo
        for size in range(1, m + 1)
        for combo in itertools.combinations(range(m), size)
    ]
    for rs in row_supports:
        for cs in col_supports:
            if equal_size_only and len(rs) != len(cs):
                continue
            yield rs, cs


def _search_setup(game: BimatrixGame, policy):
    """Resolve the policy to a backend and float payoff caches."""
    n, m = game.action_counts
    backend = resolve_policy(policy).search_backend(n + m)
    if backend.exact:
        return None, None
    cache = (
        float_matrix(game.row_matrix),
        float_matrix(game.column_matrix_transposed),
    )
    return backend, cache


def _certified(game: BimatrixGame, profile: MixedProfile) -> bool:
    """The exact certification gate every search candidate passes through."""
    from repro.equilibria.mixed import certify_mixed_profile

    return certify_mixed_profile(game, profile) is not None


def support_enumeration(
    game: BimatrixGame, equal_size_only: bool = False, policy=None
) -> tuple[MixedProfile, ...]:
    """All equilibria found by support enumeration, deduplicated.

    With ``equal_size_only`` the search restricts to equal-cardinality
    supports — complete for non-degenerate games and much faster; the
    default scans every pair, which also picks up degenerate equilibria
    such as the Fig. 5 continuum's extreme points.  ``policy`` selects
    the numeric search backend (``None``/"exact" is the seed behaviour;
    "float+certify" screens support pairs in float64 and certifies every
    candidate exactly before it is returned).

    Soundness is unconditional in every mode: nothing uncertified is
    ever returned.  *Completeness* of the float screen is heuristic:
    the float LP row-equilibrates and treats only clear margins as
    infeasible (anything borderline is re-decided exactly), but a
    knife-edge support pair whose feasibility margin sits below float
    resolution can in principle be pruned.  Callers that must not miss
    any equilibrium use the exact policy.
    """
    backend, float_cache = _search_setup(game, policy)
    seen: set[tuple] = set()
    out: list[MixedProfile] = []
    n, m = game.action_counts
    for rs, cs in support_pairs(n, m, equal_size_only=equal_size_only):
        result = equilibrium_for_supports(
            game, rs, cs, backend=backend, _float_cache=float_cache
        )
        if result is None:
            continue
        profile, __, __ = result
        if backend is not None and not _certified(game, profile):
            # A candidate slipped past the exact reconstruction (it
            # cannot, but the gate is the guarantee, not the search):
            # recompute this pair on the exact path.
            result = equilibrium_for_supports(game, rs, cs)
            if result is None:
                continue
            profile = result[0]
        key = profile.distributions
        if key not in seen:
            seen.add(key)
            out.append(profile)
    return tuple(out)


def find_one_equilibrium(game: BimatrixGame, policy=None) -> MixedProfile:
    """The first equilibrium support enumeration finds (smallest support).

    Every finite game has one (Nash 1950), so exhausting the support pairs
    without a hit indicates an internal error — or, on a float search
    backend, an over-aggressive screen; in that case the scan is repeated
    on the exact path before concluding anything.
    """
    backend, float_cache = _search_setup(game, policy)
    n, m = game.action_counts
    for rs, cs in support_pairs(n, m):
        result = equilibrium_for_supports(
            game, rs, cs, backend=backend, _float_cache=float_cache
        )
        if result is not None:
            profile = result[0]
            if backend is None or _certified(game, profile):
                return profile
    if backend is not None:
        # The float screen may have pruned a knife-edge support pair;
        # the exact rescan is the authoritative answer.
        return find_one_equilibrium(game)
    raise EquilibriumError(
        "support enumeration found no equilibrium; this contradicts Nash's theorem"
    )
