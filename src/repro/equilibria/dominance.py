"""Dominant strategies and iterated elimination.

The paper's related work (via Tadjouddine [29]) contrasts verification
complexities: "Nash and Bayesian Nash equilibria can be verified in
polynomial time.  Moreover, dominant strategy equilibrium is NP-complete"
(for succinctly represented games).  For the explicitly tabulated games
this library works with, checking dominance is a straightforward sweep
over opponent profiles — still the most expensive check in the
solution-concept library, since it quantifies over the *entire* opponent
profile space per action pair.

Provided here:

* weak/strict dominance checks for single actions;
* :func:`dominant_strategy_equilibrium` — the profile of (weakly)
  dominant actions, when every player has one;
* iterated elimination of strictly dominated strategies (IESDS), the
  classic preprocessing step — equilibria survive it, which the tests
  pin as a property.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.games.base import Game
from repro.games.profiles import PureProfile


def _opponent_profiles(game: Game, player: int, restrict=None):
    """All opponents' joint action tuples (optionally restricted).

    ``restrict`` maps players to iterables of allowed actions (used by
    the iterated-elimination loop); players absent from it keep their
    full action range.
    """
    ranges = []
    for other in game.players():
        if other == player:
            continue
        if restrict is not None and other in restrict:
            ranges.append(tuple(restrict[other]))
        else:
            ranges.append(tuple(game.actions(other)))
    return itertools.product(*ranges)


def _insert(player: int, action: int, others: tuple[int, ...]) -> PureProfile:
    return others[:player] + (action,) + others[player:]


def weakly_dominates(game: Game, player: int, action: int, other: int,
                     restrict=None) -> bool:
    """``action`` is at least as good as ``other`` against every opponent
    profile, and strictly better against at least one."""
    strict_somewhere = False
    for others in _opponent_profiles(game, player, restrict):
        u_action = game.payoff(player, _insert(player, action, others))
        u_other = game.payoff(player, _insert(player, other, others))
        if u_action < u_other:
            return False
        if u_action > u_other:
            strict_somewhere = True
    return strict_somewhere


def strictly_dominates(game: Game, player: int, action: int, other: int,
                       restrict=None) -> bool:
    """``action`` is strictly better than ``other`` against every
    opponent profile."""
    for others in _opponent_profiles(game, player, restrict):
        u_action = game.payoff(player, _insert(player, action, others))
        u_other = game.payoff(player, _insert(player, other, others))
        if u_action <= u_other:
            return False
    return True


def is_dominant_action(game: Game, player: int, action: int,
                       strict: bool = False) -> bool:
    """``action`` weakly (or strictly) dominates every alternative.

    Weak dominance here follows the standard equilibrium usage: at least
    as good as each alternative everywhere (ties everywhere allowed),
    i.e. the action is a best reply against *every* opponent profile.
    """
    for others in _opponent_profiles(game, player):
        u_action = game.payoff(player, _insert(player, action, others))
        for other in game.actions(player):
            if other == action:
                continue
            u_other = game.payoff(player, _insert(player, other, others))
            if strict and u_action <= u_other:
                return False
            if not strict and u_action < u_other:
                return False
    return True


def dominant_strategy_equilibrium(game: Game, strict: bool = False) -> PureProfile | None:
    """The profile of dominant actions, or None if some player lacks one.

    With strict dominance the equilibrium is unique when it exists; with
    weak dominance ties are broken toward the lowest action index.
    """
    profile = []
    for player in game.players():
        dominant = next(
            (
                action
                for action in game.actions(player)
                if is_dominant_action(game, player, action, strict=strict)
            ),
            None,
        )
        if dominant is None:
            return None
        profile.append(dominant)
    return tuple(profile)


@dataclass(frozen=True)
class EliminationStep:
    """One IESDS elimination: which action of which player, and why."""

    player: int
    eliminated: int
    dominated_by: int


def iterated_elimination(game: Game, strict: bool = True):
    """Iterated elimination of (strictly) dominated strategies.

    Returns ``(survivors, steps)`` where ``survivors`` maps each player
    to its surviving action tuple.  Strict elimination is order-
    independent; weak elimination is applied lowest-index-first and is
    order-dependent (documented standard behaviour).
    """
    survivors: dict[int, list[int]] = {
        player: list(game.actions(player)) for player in game.players()
    }
    steps: list[EliminationStep] = []
    dominates = strictly_dominates if strict else weakly_dominates
    changed = True
    while changed:
        changed = False
        for player in game.players():
            if len(survivors[player]) <= 1:
                continue
            restrict = {p: tuple(acts) for p, acts in survivors.items()}
            for candidate in list(survivors[player]):
                others = [a for a in survivors[player] if a != candidate]
                dominator = next(
                    (
                        a
                        for a in others
                        if dominates(game, player, a, candidate, restrict)
                    ),
                    None,
                )
                if dominator is not None:
                    survivors[player].remove(candidate)
                    steps.append(
                        EliminationStep(
                            player=player,
                            eliminated=candidate,
                            dominated_by=dominator,
                        )
                    )
                    changed = True
                    break  # re-derive restriction before further cuts
    return (
        {player: tuple(actions) for player, actions in survivors.items()},
        tuple(steps),
    )
