"""Fictitious play — the "statistically emerging patterns" baseline.

The paper motivates the inventor's advantage by noting that "there are
some cases in which the game outcome is known, say, due to human
innovation or statistically emerging patterns [Freund-Schapire]".
Fictitious play is the classical such pattern-forming process: each
player repeatedly best-responds to the empirical frequency of the
opponent's past actions.  For zero-sum games the empirical mixtures
converge to equilibrium (Robinson's theorem), which gives the inventor a
*statistical* route to an advisable profile — whose exactness is then
certified through the usual verification pipeline.

The implementation is exact (Fractions): empirical mixtures are rational
by construction, so an advised profile can be handed directly to the
interactive verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import EquilibriumError
from repro.games.bimatrix import COLUMN, ROW, BimatrixGame
from repro.games.profiles import MixedProfile
from repro.equilibria.best_reply import best_reply_gap


@dataclass(frozen=True)
class FictitiousPlayResult:
    """Outcome of a fictitious-play run.

    ``empirical`` is the profile of empirical action frequencies;
    ``epsilon`` is its exact best-reply gap (how far from equilibrium);
    ``history`` optionally carries the per-round epsilon trace.
    """

    empirical: MixedProfile
    rounds: int
    epsilon: Fraction
    history: tuple[Fraction, ...] = ()


def fictitious_play(
    game: BimatrixGame,
    rounds: int,
    initial: tuple[int, int] = (0, 0),
    record_history: bool = False,
    history_stride: int = 10,
) -> FictitiousPlayResult:
    """Run simultaneous fictitious play for ``rounds`` steps.

    Both players start from ``initial`` and at each step best-respond to
    the opponent's empirical mixture so far (ties to the lowest action
    index, keeping the process deterministic).
    """
    if rounds < 1:
        raise EquilibriumError("fictitious play needs at least one round")
    n, m = game.action_counts
    row_counts = [0] * n
    col_counts = [0] * m
    row_action, col_action = initial
    if not (0 <= row_action < n and 0 <= col_action < m):
        raise EquilibriumError(f"initial profile {initial} out of range")
    row_counts[row_action] += 1
    col_counts[col_action] += 1

    history: list[Fraction] = []
    a = game.row_matrix
    b = game.column_matrix
    for step in range(2, rounds + 1):
        # Best reply to the opponent's empirical counts (scaling by the
        # round count cancels, so compare raw count-weighted payoffs).
        row_scores = [
            sum(a[i][j] * col_counts[j] for j in range(m)) for i in range(n)
        ]
        col_scores = [
            sum(b[i][j] * row_counts[i] for i in range(n)) for j in range(m)
        ]
        row_action = max(range(n), key=lambda i: (row_scores[i], -i))
        col_action = max(range(m), key=lambda j: (col_scores[j], -j))
        row_counts[row_action] += 1
        col_counts[col_action] += 1

        if record_history and step % history_stride == 0:
            history.append(_empirical_epsilon(game, row_counts, col_counts, step))

    empirical = _empirical_profile(row_counts, col_counts, rounds)
    epsilon = max(
        best_reply_gap(game, ROW, empirical),
        best_reply_gap(game, COLUMN, empirical),
    )
    return FictitiousPlayResult(
        empirical=empirical,
        rounds=rounds,
        epsilon=epsilon,
        history=tuple(history),
    )


def _empirical_profile(row_counts, col_counts, total) -> MixedProfile:
    return MixedProfile(
        (
            tuple(Fraction(c, total) for c in row_counts),
            tuple(Fraction(c, total) for c in col_counts),
        )
    )


def _empirical_epsilon(game, row_counts, col_counts, total) -> Fraction:
    profile = _empirical_profile(row_counts, col_counts, total)
    return max(
        best_reply_gap(game, ROW, profile),
        best_reply_gap(game, COLUMN, profile),
    )
