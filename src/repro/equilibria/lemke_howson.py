"""The Lemke-Howson algorithm with exact rational pivoting.

This is the inventor's heavyweight tool for bimatrix games: path-following
over the best-response polytopes, worst-case exponential (the problem is
PPAD-complete, as the paper stresses via [6]), but exact — every
equilibrium it returns verifies under the exact checkers, which is what
makes the advice *provable*.

Conventions (von Stengel's formulation):

* labels ``0..n-1`` belong to the row player's actions, ``n..n+m-1`` to
  the column player's;
* tableau X carries the row player's polytope ``{x >= 0, B^T x <= 1}``
  (m constraint rows); tableau Y carries ``{y >= 0, A y <= 1}``
  (n constraint rows);
* both payoff matrices are shifted to be strictly positive first (an
  equilibrium-preserving transformation);
* ties in the ratio test are broken lexicographically on whole rows,
  which terminates on degenerate games.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import EquilibriumError
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile

_ZERO = Fraction(0)
_ONE = Fraction(1)


class _Tableau:
    """One polytope's dictionary with exact pivoting.

    ``rows`` is a list of lists of Fractions: decision and slack columns
    followed by the right-hand side.  ``basic`` maps each row to the label
    of its basic variable; ``column_of`` maps a label to its column.
    """

    def __init__(self, matrix_rows: Sequence[Sequence[Fraction]],
                 decision_labels: Sequence[int], slack_labels: Sequence[int]):
        num_rows = len(matrix_rows)
        self.column_of = {}
        for idx, label in enumerate(decision_labels):
            self.column_of[label] = idx
        for idx, label in enumerate(slack_labels):
            self.column_of[label] = len(decision_labels) + idx
        width = len(decision_labels) + len(slack_labels) + 1
        self.rows: list[list[Fraction]] = []
        for r, matrix_row in enumerate(matrix_rows):
            row = list(matrix_row)
            row += [_ONE if j == r else _ZERO for j in range(num_rows)]
            row.append(_ONE)
            if len(row) != width:
                raise EquilibriumError("internal tableau width mismatch")
            self.rows.append(row)
        self.basic: list[int] = list(slack_labels)

    def enter(self, label: int) -> int:
        """Pivot the variable with ``label`` into the basis.

        Returns the label of the leaving variable.  The leaving row is the
        lexicographic minimum of (row / pivot-coefficient) over rows with a
        positive pivot coefficient — the classic anti-cycling rule.
        """
        col = self.column_of[label]
        best_row = None
        best_vector = None
        for r, row in enumerate(self.rows):
            coef = row[col]
            if coef > 0:
                # rhs first, then the full row, all scaled by the pivot coef.
                vector = [row[-1] / coef] + [x / coef for x in row[:-1]]
                if best_vector is None or vector < best_vector:
                    best_vector = vector
                    best_row = r
        if best_row is None:
            raise EquilibriumError(
                "Lemke-Howson ray termination; payoff matrices must be positive"
            )
        leaving = self.basic[best_row]
        self._pivot(best_row, col)
        self.basic[best_row] = label
        return leaving

    def _pivot(self, row_idx: int, col_idx: int) -> None:
        inv = _ONE / self.rows[row_idx][col_idx]
        self.rows[row_idx] = [x * inv for x in self.rows[row_idx]]
        pivot_row = self.rows[row_idx]
        for r, row in enumerate(self.rows):
            if r != row_idx and row[col_idx] != 0:
                factor = row[col_idx]
                self.rows[r] = [x - factor * y for x, y in zip(row, pivot_row)]

    def solution(self, labels: Sequence[int]) -> list[Fraction]:
        """Values of the variables with the given labels (0 when non-basic)."""
        values = []
        for label in labels:
            if label in self.basic:
                values.append(self.rows[self.basic.index(label)][-1])
            else:
                values.append(_ZERO)
        return values


def _positive_shift(matrix: Sequence[Sequence[Fraction]]) -> tuple[tuple[Fraction, ...], ...]:
    """Shift all entries so the minimum becomes 1 (equilibria unchanged)."""
    lowest = min(x for row in matrix for x in row)
    shift = _ONE - lowest
    return tuple(tuple(x + shift for x in row) for row in matrix)


def lemke_howson(game: BimatrixGame, initial_label: int = 0) -> MixedProfile:
    """Run Lemke-Howson from ``initial_label``; returns one exact equilibrium."""
    n, m = game.action_counts
    if not 0 <= initial_label < n + m:
        raise EquilibriumError(
            f"initial label {initial_label} out of range [0, {n + m})"
        )
    a = _positive_shift(game.row_matrix)
    b = _positive_shift(game.column_matrix)

    row_labels = list(range(n))
    col_labels = list(range(n, n + m))

    # Tableau X: m rows of B^T (x-columns first), slacks labeled n..n+m-1.
    bt_rows = [[b[i][j] for i in range(n)] for j in range(m)]
    tableau_x = _Tableau(bt_rows, decision_labels=row_labels, slack_labels=col_labels)
    # Tableau Y: n rows of A (y-columns first), slacks labeled 0..n-1.
    a_rows = [[a[i][j] for j in range(m)] for i in range(n)]
    tableau_y = _Tableau(a_rows, decision_labels=col_labels, slack_labels=row_labels)

    # The dropped label enters its own tableau first.
    entering = initial_label
    current = tableau_x if initial_label < n else tableau_y
    other = tableau_y if current is tableau_x else tableau_x

    for _step in range(4 ** (n + m) + 16):
        leaving = current.enter(entering)
        if leaving == initial_label:
            break
        entering = leaving
        current, other = other, current
    else:
        raise EquilibriumError("Lemke-Howson did not terminate (internal error)")

    x = tableau_x.solution(row_labels)
    y = tableau_y.solution(col_labels)
    x_total = sum(x, start=_ZERO)
    y_total = sum(y, start=_ZERO)
    if x_total == 0 or y_total == 0:
        raise EquilibriumError(
            "Lemke-Howson terminated at the artificial equilibrium"
        )
    x = [v / x_total for v in x]
    y = [v / y_total for v in y]
    return MixedProfile((tuple(x), tuple(y)))


def lemke_howson_all(game: BimatrixGame) -> tuple[MixedProfile, ...]:
    """Equilibria reached from every starting label, deduplicated.

    Not guaranteed to find *all* equilibria of the game (no LH variant
    is), but gives a deterministic, exact sample across the n+m paths.
    """
    seen: set[tuple] = set()
    out: list[MixedProfile] = []
    n, m = game.action_counts
    for label in range(n + m):
        try:
            profile = lemke_howson(game, label)
        except EquilibriumError:
            continue
        key = profile.distributions
        if key not in seen:
            seen.add(key)
            out.append(profile)
    return tuple(out)
