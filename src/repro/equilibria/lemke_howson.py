"""The Lemke-Howson algorithm with exact or float-then-certify pivoting.

This is the inventor's heavyweight tool for bimatrix games: path-following
over the best-response polytopes, worst-case exponential (the problem is
PPAD-complete, as the paper stresses via [6]), but exact — every
equilibrium it returns verifies under the exact checkers, which is what
makes the advice *provable*.

Conventions (von Stengel's formulation):

* labels ``0..n-1`` belong to the row player's actions, ``n..n+m-1`` to
  the column player's;
* tableau X carries the row player's polytope ``{x >= 0, B^T x <= 1}``
  (m constraint rows); tableau Y carries ``{y >= 0, A y <= 1}``
  (n constraint rows);
* both payoff matrices are shifted to be strictly positive first (an
  equilibrium-preserving transformation);
* ties in the ratio test are broken lexicographically on whole rows,
  which terminates on degenerate games.

Two-phase pipeline: with ``policy="float+certify"`` (or "auto" on large
games) the pivoting runs in float64 — the path-following is identical,
just two orders of magnitude cheaper per pivot because no rational
coefficient growth occurs.  The float endpoint only *suggests supports*:
the candidate is reconstructed as Fractions by an exact
support-restricted re-solve and certified against the exact Lemma-1
conditions; any failure reruns the exact pivoting, so what this module
returns is exact under every policy.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.errors import EquilibriumError
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.linalg.backend import DEFAULT_SUPPORT_TOL, resolve_policy

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: Fallback pivot tolerance for backends that do not define their own.
#: The support threshold has no module-level copy: it is the backend's
#: :attr:`~repro.linalg.backend.NumericBackend.support_tol`, one
#: documented default for every phase of the pipeline.
_FLOAT_PIVOT_TOL = 1e-9


class _Tableau:
    """One polytope's dictionary with exact or float pivoting.

    ``rows`` is a list of lists of numbers (Fractions or floats):
    decision and slack columns followed by the right-hand side.
    ``basic`` maps each row to the label of its basic variable;
    ``column_of`` maps a label to its column.  ``tol`` is the
    treat-as-zero threshold: 0 for exact arithmetic (the comparisons
    reduce to the seed's ``> 0`` / ``!= 0``), a small positive float for
    the float backend.
    """

    def __init__(self, matrix_rows: Sequence[Sequence],
                 decision_labels: Sequence[int], slack_labels: Sequence[int],
                 one=_ONE, zero=_ZERO, tol=_ZERO):
        num_rows = len(matrix_rows)
        self._one = one
        self._tol = tol
        self.column_of = {}
        for idx, label in enumerate(decision_labels):
            self.column_of[label] = idx
        for idx, label in enumerate(slack_labels):
            self.column_of[label] = len(decision_labels) + idx
        width = len(decision_labels) + len(slack_labels) + 1
        self.rows: list[list] = []
        for r, matrix_row in enumerate(matrix_rows):
            row = list(matrix_row)
            row += [one if j == r else zero for j in range(num_rows)]
            row.append(one)
            if len(row) != width:
                raise EquilibriumError("internal tableau width mismatch")
            self.rows.append(row)
        self.basic: list[int] = list(slack_labels)
        self._zero = zero

    def enter(self, label: int) -> int:
        """Pivot the variable with ``label`` into the basis.

        Returns the label of the leaving variable.  The leaving row is the
        lexicographic minimum of (row / pivot-coefficient) over rows with a
        positive pivot coefficient — the classic anti-cycling rule.
        """
        col = self.column_of[label]
        best_row = None
        best_vector = None
        for r, row in enumerate(self.rows):
            coef = row[col]
            if coef > self._tol:
                # rhs first, then the full row, all scaled by the pivot coef.
                vector = [row[-1] / coef] + [x / coef for x in row[:-1]]
                if best_vector is None or vector < best_vector:
                    best_vector = vector
                    best_row = r
        if best_row is None:
            raise EquilibriumError(
                "Lemke-Howson ray termination; payoff matrices must be positive"
            )
        leaving = self.basic[best_row]
        self._pivot(best_row, col)
        self.basic[best_row] = label
        return leaving

    def _pivot(self, row_idx: int, col_idx: int) -> None:
        inv = self._one / self.rows[row_idx][col_idx]
        self.rows[row_idx] = [x * inv for x in self.rows[row_idx]]
        pivot_row = self.rows[row_idx]
        for r, row in enumerate(self.rows):
            if r != row_idx and abs(row[col_idx]) > self._tol:
                factor = row[col_idx]
                self.rows[r] = [x - factor * y for x, y in zip(row, pivot_row)]

    def solution(self, labels: Sequence[int]) -> list:
        """Values of the variables with the given labels (0 when non-basic)."""
        values = []
        for label in labels:
            if label in self.basic:
                values.append(self.rows[self.basic.index(label)][-1])
            else:
                values.append(self._zero)
        return values


def _positive_shift(matrix: Sequence[Sequence[Fraction]]) -> tuple[tuple[Fraction, ...], ...]:
    """Shift all entries so the minimum becomes 1 (equilibria unchanged)."""
    lowest = min(x for row in matrix for x in row)
    shift = _ONE - lowest
    return tuple(tuple(x + shift for x in row) for row in matrix)


def _follow_path(game: BimatrixGame, initial_label: int, use_float: bool,
                 pivot_tol: float = _FLOAT_PIVOT_TOL):
    """Run the complementary-pivoting path; returns normalized (x, y).

    Exact mode pivots over Fractions (the seed semantics, bit for bit);
    float mode pivots over float64 with ``pivot_tol`` as the zero
    threshold (taken from the search backend so all phases share one
    tolerance set).  Raises :class:`EquilibriumError` on ray termination
    or non-termination in either mode.
    """
    n, m = game.action_counts
    a = _positive_shift(game.row_matrix)
    b = _positive_shift(game.column_matrix)

    row_labels = list(range(n))
    col_labels = list(range(n, n + m))

    if use_float:
        one, zero, tol = 1.0, 0.0, pivot_tol
        bt_rows = [[float(b[i][j]) for i in range(n)] for j in range(m)]
        a_rows = [[float(a[i][j]) for j in range(m)] for i in range(n)]
    else:
        one, zero, tol = _ONE, _ZERO, _ZERO
        # Tableau X: m rows of B^T (x-columns first), slacks n..n+m-1.
        bt_rows = [[b[i][j] for i in range(n)] for j in range(m)]
        # Tableau Y: n rows of A (y-columns first), slacks 0..n-1.
        a_rows = [[a[i][j] for j in range(m)] for i in range(n)]
    tableau_x = _Tableau(bt_rows, decision_labels=row_labels,
                         slack_labels=col_labels, one=one, zero=zero, tol=tol)
    tableau_y = _Tableau(a_rows, decision_labels=col_labels,
                         slack_labels=row_labels, one=one, zero=zero, tol=tol)

    # The dropped label enters its own tableau first.
    entering = initial_label
    current = tableau_x if initial_label < n else tableau_y
    other = tableau_y if current is tableau_x else tableau_x

    # Exact pivoting is anti-cycling by the lexicographic rule, so its
    # cap only guards against internal errors.  Float pivoting has no
    # such guarantee (the rule is evaluated with tolerances): give it a
    # generous polynomial budget and treat exhaustion as a routing
    # signal back to the exact path, not a correctness bound.
    if use_float:
        max_steps = 512 + 8 * (n + m) ** 2
    else:
        max_steps = 4 ** (n + m) + 16
    for _step in range(max_steps):
        leaving = current.enter(entering)
        if leaving == initial_label:
            break
        entering = leaving
        current, other = other, current
    else:
        raise EquilibriumError("Lemke-Howson did not terminate (internal error)")

    x = tableau_x.solution(row_labels)
    y = tableau_y.solution(col_labels)
    x_total = sum(x, start=zero)
    y_total = sum(y, start=zero)
    if x_total == 0 or y_total == 0:
        raise EquilibriumError(
            "Lemke-Howson terminated at the artificial equilibrium"
        )
    x = [v / x_total for v in x]
    y = [v / y_total for v in y]
    return x, y


def _certify_float_endpoint(
    game: BimatrixGame, x: Sequence[float], y: Sequence[float],
    support_tol: float = DEFAULT_SUPPORT_TOL,
) -> MixedProfile | None:
    """Exact reconstruction + certification of a float LH endpoint.

    The float endpoint is only trusted for its *supports*: the exact
    support-restricted re-solve recovers the rational equilibrium those
    supports induce, and the exact Nash check is the gate.  Returns None
    when anything fails, so the caller reruns the exact pivoting.
    """
    from repro.equilibria.mixed import certify_mixed_profile
    from repro.equilibria.support_enumeration import reconstruct_one_side
    from repro.games.profiles import ProfileError

    n, m = game.action_counts
    row_support = tuple(i for i, v in enumerate(x) if v > support_tol)
    col_support = tuple(j for j, v in enumerate(y) if v > support_tol)
    if not row_support or not col_support:
        return None
    # Support-restricted exact re-solves (linear systems, not LPs): the
    # column mix makes the row support indifferent and vice versa.
    y_side = reconstruct_one_side(game.row_matrix, row_support, col_support, m)
    if y_side is None:
        return None
    x_side = reconstruct_one_side(
        game.column_matrix_transposed, col_support, row_support, n
    )
    if x_side is None:
        return None
    try:
        profile = MixedProfile((x_side[0], y_side[0]))
    except ProfileError:
        return None
    return certify_mixed_profile(game, profile)


def lemke_howson(
    game: BimatrixGame, initial_label: int = 0, policy=None
) -> MixedProfile:
    """Run Lemke-Howson from ``initial_label``; returns one exact equilibrium.

    ``policy`` selects the search backend: ``None``/"exact" pivots over
    Fractions (seed behaviour); "float+certify" pivots in float64 and
    certifies the endpoint exactly, falling back to exact pivoting on any
    numerical doubt.  The result is an exact equilibrium in every mode.
    """
    n, m = game.action_counts
    if not 0 <= initial_label < n + m:
        raise EquilibriumError(
            f"initial label {initial_label} out of range [0, {n + m})"
        )
    backend = resolve_policy(policy).search_backend(n + m)
    if not backend.exact:
        pivot_tol = getattr(backend, "pivot_tol", _FLOAT_PIVOT_TOL)
        support_tol = backend.support_tol
        try:
            x, y = _follow_path(
                game, initial_label, use_float=True, pivot_tol=pivot_tol
            )
        except EquilibriumError:
            pass  # fall through to the exact path
        else:
            profile = _certify_float_endpoint(game, x, y, support_tol=support_tol)
            if profile is not None:
                return profile
    x, y = _follow_path(game, initial_label, use_float=False)
    return MixedProfile((tuple(x), tuple(y)))


def lemke_howson_all(game: BimatrixGame, policy=None) -> tuple[MixedProfile, ...]:
    """Equilibria reached from every starting label, deduplicated.

    Not guaranteed to find *all* equilibria of the game (no LH variant
    is), but gives a deterministic, exact sample across the n+m paths.
    """
    seen: set[tuple] = set()
    out: list[MixedProfile] = []
    n, m = game.action_counts
    for label in range(n + m):
        try:
            profile = lemke_howson(game, label, policy=policy)
        except EquilibriumError:
            continue
        key = profile.distributions
        if key not in seen:
            seen.add(key)
            out.append(profile)
    return tuple(out)
