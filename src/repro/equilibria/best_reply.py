"""Best replies — the primitive every equilibrium notion is built on.

"We have in mind a framework that will let the ordinary and inexperienced
Joe and Jane safely figure their best-reply."  A strategy is a best reply
if no unilateral deviation improves the player's utility; these helpers
compute and check that, exactly, for pure and mixed play.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import GameError
from repro.games.base import Game
from repro.games.profiles import MixedProfile, PureProfile, change


def deviation_payoffs(game: Game, player: int, profile: PureProfile) -> tuple[Fraction, ...]:
    """Player's payoff for each of its actions, holding others at ``profile``."""
    profile = game.validate_profile(profile)
    return tuple(
        game.payoff(player, change(profile, action, player))
        for action in game.actions(player)
    )


def best_reply_actions(game: Game, player: int, profile: PureProfile) -> tuple[int, ...]:
    """All pure best replies of ``player`` against ``profile``'s opponents."""
    payoffs = deviation_payoffs(game, player, profile)
    best = max(payoffs)
    return tuple(a for a, u in enumerate(payoffs) if u == best)


def best_reply_value(game: Game, player: int, profile: PureProfile) -> Fraction:
    """The best achievable payoff of ``player`` against ``profile``'s opponents."""
    return max(deviation_payoffs(game, player, profile))


def is_best_reply(game: Game, player: int, profile: PureProfile) -> bool:
    """True iff ``profile[player]`` is a best reply to the others."""
    payoffs = deviation_payoffs(game, player, profile)
    return payoffs[profile[player]] == max(payoffs)


def find_improving_deviation(
    game: Game, player: int, profile: PureProfile
) -> int | None:
    """An action strictly better than ``profile[player]``, or ``None``.

    This is the counterexample the Fig. 2 proof scheme exhibits for
    non-equilibrium profiles: a pair (i, s_i) with
    ``u_i(Si) < u_i(change(Si, s_i, i))``.
    """
    payoffs = deviation_payoffs(game, player, profile)
    current = payoffs[profile[player]]
    for action, value in enumerate(payoffs):
        if value > current:
            return action
    return None


def mixed_action_payoffs(
    game: Game, player: int, mixed: MixedProfile
) -> tuple[Fraction, ...]:
    """Expected payoff of each pure action against the others' mixed play."""
    return tuple(
        game.expected_action_payoff(player, action, mixed)
        for action in game.actions(player)
    )


def is_mixed_best_reply(game: Game, player: int, mixed: MixedProfile) -> bool:
    """True iff ``player``'s mixed strategy is a best reply within ``mixed``.

    By the support characterization (the "second Nash theorem" the paper
    invokes for P1): the mixed strategy is a best reply iff every action
    in its support attains the maximal expected payoff.
    """
    payoffs = mixed_action_payoffs(game, player, mixed)
    best = max(payoffs)
    dist = mixed.distribution(player)
    if len(dist) != game.num_actions(player):
        raise GameError("mixed strategy has wrong length")
    return all(payoffs[a] == best for a in mixed.support(player))


def best_reply_gap(game: Game, player: int, mixed: MixedProfile) -> Fraction:
    """How much ``player`` could gain by deviating from ``mixed`` (>= 0).

    Zero iff the strategy is a best reply; this is the per-player
    epsilon in epsilon-Nash checks.
    """
    payoffs = mixed_action_payoffs(game, player, mixed)
    best = max(payoffs)
    current = game.expected_payoff(player, mixed)
    return best - current


def best_reply_gaps(game: Game, mixed: MixedProfile) -> tuple[Fraction, ...]:
    """Every player's deviation gap at ``mixed`` (all zero iff Nash).

    The vector the certification gate and the epsilon-Nash checks both
    consume; computing it in one pass keeps the exact verification cost
    at Lemma 1's one-solve scale.
    """
    return tuple(
        best_reply_gap(game, player, mixed) for player in game.players()
    )
