"""Screening executors: serial or sharded across worker processes.

The staged candidate engine in :mod:`repro.equilibria.support_enumeration`
splits enumeration into *screening* (approximate, embarrassingly
parallel, produces plain picklable candidates) and *certification*
(exact Fractions, always in the calling process).  The executor seam
covers only the screening half, which is what makes sharding sound by
construction: worker processes never produce anything the parent
believes without exact reconstruction and the Lemma-1 gate.

Determinism contract: both executors consume the *same* pre-chunked
work list and return chunk results in submission order, so the
enumeration output is bit-identical for every worker count (including
the serial path).  Chunk boundaries are fixed by the caller, never by
the pool.

:class:`ShardedExecutor` degrades gracefully: sandboxes and restricted
interpreters that cannot fork/spawn process pools (or whose pools break
mid-flight) fall back to in-process execution and record the fact on
:attr:`ShardedExecutor.fell_back` — callers audit the executor that
*actually ran*.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

# Lazily bound fault-injection module (repro.service.faults).  Lazy
# because this module is imported *by* repro.service during its package
# init — a top-level import here would close the cycle against a
# partially initialized package.  After the first call the cost is one
# global load per hit; disarmed, faults.check is itself a no-op test.
_faults = None


def _fault_check(point: str) -> None:
    global _faults
    if _faults is None:
        from repro.service import faults

        _faults = faults
    _faults.check(point)


def pools_disabled() -> bool:
    """True when ``REPRO_FORCE_SERIAL`` forces all fan-out in process.

    The CI job that proves the stack degrades cleanly on a bare
    interpreter sets this: worker pools are never started (and verifier
    thread pools run inline), so every code path that *would* shard
    exercises its serial fallback instead.  By the determinism contract
    this changes cost only, never answers.  The conventional falsy
    spellings (``0``, ``false``, ``no``, empty) leave pools enabled, so
    a CI matrix can set the variable on both legs.
    """
    value = os.environ.get("REPRO_FORCE_SERIAL", "")
    return value.strip().lower() not in ("", "0", "false", "no")


class SerialExecutor:
    """In-process chunk execution (the default, and the fallback)."""

    name = "serial"
    workers = 1

    def map_chunks(self, fn: Callable, chunks: Sequence) -> list:
        """Apply ``fn`` to every chunk, in order."""
        return [fn(chunk) for chunk in chunks]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ShardedExecutor:
    """Fan chunks across a process pool, preserving submission order.

    The pool is created lazily on first use and kept open until
    :meth:`close`, so a batch of consultations (or a stream of
    enumeration runs) amortizes worker startup across calls.  Results
    come back in submission order whatever the completion order, and
    chunking is the caller's, so worker count never changes answers.
    """

    name = "sharded"

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("ShardedExecutor needs at least one worker")
        self.workers = workers
        self._pool = None
        self.fell_back = False
        self._serial = SerialExecutor()
        #: Lifetime count of successful mid-run pool rebuilds.
        self.rebuilds = 0
        # One-fresh-chance latch: a pool that breaks mid-run is rebuilt
        # once; a rebuilt pool that finishes a run cleanly re-earns the
        # chance, a rebuilt pool that breaks again degrades to serial.
        self._rebuild_attempted = False
        #: Supervision events (dicts with a ``kind`` of ``rebuilt`` or
        #: ``degraded``) for the owner to drain into its audit log.
        self.events: list[dict] = []

    @property
    def effective_name(self) -> str:
        """What actually ran: ``sharded``, or ``serial`` after a fallback."""
        return self._serial.name if self.fell_back else self.name

    def _ensure_pool(self):
        if self.fell_back or self._pool is not None:
            return self._pool
        if pools_disabled():
            self.fell_back = True
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=self.workers)
        except (ImportError, NotImplementedError, OSError, PermissionError,
                ValueError):
            # Restricted sandbox (no fork/spawn, no semaphores): screen
            # in process instead.  Same chunks, same order, same answers.
            self.fell_back = True
            return None
        self._pool = pool
        return pool

    def map_chunks(self, fn: Callable, chunks: Sequence) -> list:
        pool = self._ensure_pool()
        if pool is None:
            return self._serial.map_chunks(fn, chunks)
        try:
            results = self._run_on_pool(pool, fn, chunks)
        except BaseException as exc:
            # A broken pool (killed worker, unpicklable payload, sandbox
            # revoking forks mid-run) must not lose the enumeration.
            # Worker screening has no side effects, so a clean restart
            # is safe: give the pool ONE fresh chance (rebuild and rerun
            # the whole batch); a rebuilt pool that breaks again — or a
            # rebuild that cannot start — degrades to the serial path.
            from concurrent.futures.process import BrokenProcessPool

            if not isinstance(exc, (BrokenProcessPool, OSError, PermissionError)):
                raise
            self.close()
            if not self._rebuild_attempted:
                self._rebuild_attempted = True
                retry = self._ensure_pool()
                if retry is not None:
                    try:
                        results = self._run_on_pool(retry, fn, chunks)
                    except BaseException as again:
                        if not isinstance(
                            again,
                            (BrokenProcessPool, OSError, PermissionError),
                        ):
                            raise
                        self.close()
                        return self._degrade(again, fn, chunks)
                    else:
                        self.rebuilds += 1
                        self.events.append({
                            "kind": "rebuilt",
                            "workers": self.workers,
                            "error": f"{type(exc).__name__}: {exc}",
                        })
                        # A clean run on the rebuilt pool re-earns the
                        # fresh chance for the next mid-run break.
                        self._rebuild_attempted = False
                        return results
            return self._degrade(exc, fn, chunks)
        else:
            self._rebuild_attempted = False
            return results

    def _run_on_pool(self, pool, fn: Callable, chunks: Sequence) -> list:
        futures = []
        for chunk in chunks:
            _fault_check("pool.chunk")
            futures.append(pool.submit(fn, chunk))
        return [future.result() for future in futures]

    def _degrade(self, exc: BaseException, fn: Callable,
                 chunks: Sequence) -> list:
        """Latch the serial fallback; finish the batch in process."""
        self.fell_back = True
        self.events.append({
            "kind": "degraded",
            "error": f"{type(exc).__name__}: {exc}",
        })
        return self._serial.map_chunks(fn, chunks)

    def drain_events(self) -> list[dict]:
        """Pop queued supervision events (rebuilds / degradations)."""
        events, self.events = self.events, []
        return events

    def resize(self, workers: int) -> bool:
        """Change the shard count; returns True when it actually changed.

        The determinism contract makes this safe at any quiescent point:
        chunk boundaries are the caller's, so a pool of any size returns
        identical results — resizing trades cost, never answers.  The
        current pool (if any) is shut down and a new one is started
        lazily on the next :meth:`map_chunks`; a resize also clears the
        fallback latch, giving a previously broken pool one fresh
        attempt at the new size.
        """
        if workers < 1:
            raise ValueError("ShardedExecutor needs at least one worker")
        if workers == self.workers and not self.fell_back:
            return False
        self.close()
        self.workers = workers
        self.fell_back = False
        self._rebuild_attempted = False
        return True

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def make_executor(workers: int = 1) -> SerialExecutor | ShardedExecutor:
    """The executor for a resolved worker count (1 means serial).

    With ``REPRO_FORCE_SERIAL`` set (see :func:`pools_disabled`) every
    worker count resolves to the serial executor.
    """
    if workers <= 1 or pools_disabled():
        return SerialExecutor()
    return ShardedExecutor(workers=workers)


def chunk_list(items: Sequence, chunk_size: int) -> list:
    """Deterministic fixed-size chunking (the last chunk may be short).

    Chunk boundaries depend only on ``chunk_size`` — never on worker
    count — which is what keeps sharded screening reproducible and lets
    warm-start caches reset at identical points on every execution plan.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        list(items[start:start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]
