"""Equilibrium computation and exact verification primitives."""

from repro.equilibria.correlated import (
    correlated_equilibrium_lp,
    is_correlated_equilibrium,
    normalize_distribution,
    obedience_gap,
    product_distribution,
)
from repro.equilibria.dominance import (
    EliminationStep,
    dominant_strategy_equilibrium,
    is_dominant_action,
    iterated_elimination,
    strictly_dominates,
    weakly_dominates,
)
from repro.equilibria.fictitious_play import FictitiousPlayResult, fictitious_play
from repro.equilibria.best_reply import (
    best_reply_actions,
    best_reply_gap,
    best_reply_value,
    deviation_payoffs,
    find_improving_deviation,
    is_best_reply,
    is_mixed_best_reply,
    mixed_action_payoffs,
)
from repro.equilibria.lemke_howson import lemke_howson, lemke_howson_all
from repro.equilibria.mixed import (
    MixedNashReport,
    check_mixed_nash,
    equilibrium_values,
    is_epsilon_nash,
    is_mixed_nash,
)
from repro.equilibria.pure import (
    DeviationWitness,
    dominates,
    incomparability_witness,
    is_maximal_pure_nash,
    is_pure_nash,
    maximal_pure_nash,
    minimal_pure_nash,
    pure_nash_equilibria,
    refute_pure_nash,
)
from repro.equilibria.support_enumeration import (
    equilibrium_for_supports,
    find_one_equilibrium,
    support_enumeration,
)
from repro.equilibria.symmetric import (
    exact_sqrt,
    find_interior_equilibria,
    participation_equilibrium,
    solve_k2_closed_form,
    symmetric_equilibria,
)

__all__ = [
    "correlated_equilibrium_lp",
    "is_correlated_equilibrium",
    "normalize_distribution",
    "obedience_gap",
    "product_distribution",
    "EliminationStep",
    "dominant_strategy_equilibrium",
    "is_dominant_action",
    "iterated_elimination",
    "strictly_dominates",
    "weakly_dominates",
    "FictitiousPlayResult",
    "fictitious_play",
    "best_reply_actions",
    "best_reply_gap",
    "best_reply_value",
    "deviation_payoffs",
    "find_improving_deviation",
    "is_best_reply",
    "is_mixed_best_reply",
    "mixed_action_payoffs",
    "lemke_howson",
    "lemke_howson_all",
    "MixedNashReport",
    "check_mixed_nash",
    "equilibrium_values",
    "is_epsilon_nash",
    "is_mixed_nash",
    "DeviationWitness",
    "dominates",
    "incomparability_witness",
    "is_maximal_pure_nash",
    "is_pure_nash",
    "maximal_pure_nash",
    "minimal_pure_nash",
    "pure_nash_equilibria",
    "refute_pure_nash",
    "equilibrium_for_supports",
    "find_one_equilibrium",
    "support_enumeration",
    "exact_sqrt",
    "find_interior_equilibria",
    "participation_equilibrium",
    "solve_k2_closed_form",
    "symmetric_equilibria",
]
