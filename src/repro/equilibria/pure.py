"""Pure Nash equilibria: enumeration, maximality, and witnesses.

Implements the definitions of Fig. 2 directly:

* ``isNash``  — :func:`is_pure_nash` (all unilateral deviations weakly lose);
* the counterexample form — :func:`refute_pure_nash` returns the (i, s_i)
  pair with ``u_i(Si) < u_i(change(Si, s_i, i))`` for non-equilibria;
* ``isMaxNash`` / the profile partial order ``<=_u`` — :func:`dominates`,
  :func:`maximal_pure_nash`, :func:`minimal_pure_nash`;
* ``noComp`` — :func:`incomparability_witness`.

Enumeration is exhaustive over the profile space — exactly the
(intractable in general) computation that motivates Sect. 4's interactive
alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.games.base import Game
from repro.games.profiles import PureProfile, change


@dataclass(frozen=True)
class DeviationWitness:
    """A concrete profitable deviation: the Fig. 2 counterexample.

    ``player`` strictly prefers ``better_action`` over its assignment in
    ``profile``: ``after > before``.
    """

    profile: PureProfile
    player: int
    better_action: int
    before: Fraction
    after: Fraction


def is_pure_nash(game: Game, profile: PureProfile) -> bool:
    """The paper's ``isNash``: no player gains by a unilateral deviation."""
    profile = game.validate_profile(profile)
    for player in game.players():
        current = game.payoff(player, profile)
        for action in game.actions(player):
            if action == profile[player]:
                continue
            if game.payoff(player, change(profile, action, player)) > current:
                return False
    return True


def refute_pure_nash(game: Game, profile: PureProfile) -> DeviationWitness | None:
    """Return a profitable-deviation witness, or None if ``profile`` is a PNE."""
    profile = game.validate_profile(profile)
    for player in game.players():
        current = game.payoff(player, profile)
        for action in game.actions(player):
            if action == profile[player]:
                continue
            value = game.payoff(player, change(profile, action, player))
            if value > current:
                return DeviationWitness(
                    profile=profile,
                    player=player,
                    better_action=action,
                    before=current,
                    after=value,
                )
    return None


def pure_nash_equilibria(game: Game) -> tuple[PureProfile, ...]:
    """All pure Nash equilibria, in deterministic lexicographic order."""
    return tuple(
        profile for profile in game.enumerate_profiles() if is_pure_nash(game, profile)
    )


def dominates(game: Game, s: PureProfile, s_prime: PureProfile) -> bool:
    """The paper's ``s >=_u s'``: every player weakly prefers ``s``."""
    payoffs_s = game.payoffs(s)
    payoffs_sp = game.payoffs(s_prime)
    return all(a >= b for a, b in zip(payoffs_s, payoffs_sp))


def incomparability_witness(
    game: Game, s1: PureProfile, s2: PureProfile
) -> tuple[int, int] | None:
    """The ``noComp`` witness: players (i, j) with u_i(s1) < u_i(s2) and
    u_j(s2) < u_j(s1); None if the profiles are comparable."""
    payoffs_1 = game.payoffs(s1)
    payoffs_2 = game.payoffs(s2)
    i = next((p for p in game.players() if payoffs_1[p] < payoffs_2[p]), None)
    j = next((p for p in game.players() if payoffs_2[p] < payoffs_1[p]), None)
    if i is None or j is None:
        return None
    return (i, j)


def is_maximal_pure_nash(game: Game, profile: PureProfile) -> bool:
    """``isMaxNash``: a PNE such that no other PNE strictly dominates it.

    Following footnote 1's framing: ``s`` is maximal if for any PNE
    ``s'`` we do **not** have ``s' >=_u s`` (unless the payoffs tie
    exactly, in which case neither dominates the other strictly).
    """
    if not is_pure_nash(game, profile):
        return False
    profile = game.validate_profile(profile)
    payoffs = game.payoffs(profile)
    for other in pure_nash_equilibria(game):
        if other == profile:
            continue
        other_payoffs = game.payoffs(other)
        if other_payoffs == payoffs:
            continue
        if all(a >= b for a, b in zip(other_payoffs, payoffs)):
            return False
    return True


def maximal_pure_nash(game: Game) -> tuple[PureProfile, ...]:
    """All maximal pure Nash equilibria."""
    equilibria = pure_nash_equilibria(game)
    out = []
    for s in equilibria:
        payoffs = game.payoffs(s)
        dominated = False
        for other in equilibria:
            if other == s:
                continue
            other_payoffs = game.payoffs(other)
            if other_payoffs == payoffs:
                continue
            if all(a >= b for a, b in zip(other_payoffs, payoffs)):
                dominated = True
                break
        if not dominated:
            out.append(s)
    return tuple(out)


def minimal_pure_nash(game: Game) -> tuple[PureProfile, ...]:
    """All minimal pure Nash equilibria (footnote 1's dual notion)."""
    equilibria = pure_nash_equilibria(game)
    out = []
    for s in equilibria:
        payoffs = game.payoffs(s)
        dominates_s = False
        for other in equilibria:
            if other == s:
                continue
            other_payoffs = game.payoffs(other)
            if other_payoffs == payoffs:
                continue
            if all(a <= b for a, b in zip(other_payoffs, payoffs)):
                dominates_s = True
                break
        if not dominates_s:
            out.append(s)
    return tuple(out)
