"""Correlated equilibria.

The paper positions the rationality authority against Aumann's
correlated equilibria [1]: "one might view the authority as
synchronization mechanisms that are used in correlated equilibria ...
However, the rationality authority is not trusted, whereas
synchronization mechanisms are."  Implementing the concept makes that
contrast executable: a correlated equilibrium is a distribution over
pure profiles whose *obedience constraints* any agent can check, exactly
— so an untrusted inventor can advise a correlated device and prove its
incentive-compatibility, restoring the paper's separation even for this
trusted-mediator concept.

* :func:`is_correlated_equilibrium` — exact check of all obedience
  constraints for an explicit distribution, run as machine-integer dot
  products on the game's cached integer utility table (with
  :func:`fraction_correlated_check` kept as the Fraction reference);
* :func:`correlated_equilibrium_lp` — find one by exact LP (maximizing
  total expected payoff), via the fraction-free simplex in
  :mod:`repro.linalg.int_lp`; the constraint system is built once per
  game on the integer lattice and cached (weakly) for repeat solves;
* every Nash equilibrium induces a (product) correlated equilibrium —
  pinned as a property test.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Mapping

from repro.errors import EquilibriumError
from repro.fractions_util import to_fraction
from repro.games.base import Game
from repro.games.profiles import MixedProfile, PureProfile, change
from repro.linalg.int_exact import integer_table_and_scales, integerize_vector
from repro.linalg.int_lp import solve_lp

Distribution = dict[PureProfile, Fraction]


def normalize_distribution(game: Game, dist: Mapping[PureProfile, object]) -> Distribution:
    """Validate a profile distribution: known profiles, non-negative,
    summing exactly to one."""
    out: Distribution = {}
    total = Fraction(0)
    for profile, prob in dist.items():
        profile = game.validate_profile(profile)
        prob = to_fraction(prob)
        if prob < 0:
            raise EquilibriumError(f"negative probability at {profile}")
        if prob > 0:
            out[profile] = out.get(profile, Fraction(0)) + prob
        total += prob
    if total != 1:
        raise EquilibriumError(f"distribution sums to {total}, not 1")
    return out


def obedience_gap(
    game: Game, dist: Distribution, player: int, recommended: int, deviation: int
) -> Fraction:
    """How much ``player`` gains by playing ``deviation`` whenever the
    device recommends ``recommended`` (positive = profitable deviation).

    This is the left-hand side of one correlated-equilibrium constraint:
    Σ_{s: s_i = recommended} π(s) [u_i(deviation, s_-i) - u_i(s)].
    """
    gain = Fraction(0)
    for profile, prob in dist.items():
        if profile[player] != recommended:
            continue
        deviated = change(profile, deviation, player)
        gain += prob * (game.payoff(player, deviated) - game.payoff(player, profile))
    return gain


def fraction_correlated_check(game: Game, dist: Mapping[PureProfile, object]) -> bool:
    """Exact obedience check over Fractions — the reference semantics.

    :func:`is_correlated_equilibrium` routes through the integer lattice
    when the game tabulates; this is the oracle it must (and, per the
    parity tests, does) agree with bit for bit.
    """
    return _fraction_obedience_loop(game, normalize_distribution(game, dist))


def is_correlated_equilibrium(game: Game, dist: Mapping[PureProfile, object]) -> bool:
    """Exact check of every obedience constraint.

    When the game has an integer utility table, each constraint
    Σ_{s_i = rec} π(s) [u_i(dev, s_-i) - u_i(s)] > 0 is decided on raw
    integers: the distribution is cleared by one LCM scale τ and player
    ``i``'s payoffs by the table's per-player scale σ_i, both positive,
    so the integer total has the sign of the Fraction gap — the verdict
    is identical, without a single rational operation in the loop.
    """
    dist = normalize_distribution(game, dist)
    entry = integer_table_and_scales(game)
    if entry is None:
        return _fraction_obedience_loop(game, dist)
    table, __ = entry
    support = list(dist.items())
    weights, __ = integerize_vector([prob for __, prob in support])
    for player in game.players():
        by_recommended: dict[int, list[tuple[PureProfile, int]]] = {}
        for (profile, __), weight in zip(support, weights):
            by_recommended.setdefault(profile[player], []).append((profile, weight))
        for recommended, bucket in by_recommended.items():
            obeyed = sum(w * table[profile][player] for profile, w in bucket)
            for deviation in game.actions(player):
                if deviation == recommended:
                    continue
                deviated = sum(
                    w * table[change(profile, deviation, player)][player]
                    for profile, w in bucket
                )
                if deviated > obeyed:
                    return False
    return True


def _fraction_obedience_loop(game: Game, dist: Distribution) -> bool:
    """The Fraction obedience loop on an already-normalized distribution."""
    for player in game.players():
        for recommended in game.actions(player):
            for deviation in game.actions(player):
                if deviation == recommended:
                    continue
                if obedience_gap(game, dist, player, recommended, deviation) > 0:
                    return False
    return True


def product_distribution(game: Game, mixed: MixedProfile) -> Distribution:
    """The correlated device induced by independent mixing (a Nash
    profile becomes a correlated equilibrium this way)."""
    dist: Distribution = {}
    for profile in game.enumerate_profiles():
        prob = mixed.probability(profile)
        if prob > 0:
            dist[profile] = prob
    return dist


#: Per-game cache of the correlated-equilibrium LP system (profiles,
#: index, constraints, rhs, costs).  Weakly keyed like the utility-table
#: cache: repeat solves of the same game — the find-vs-check workloads —
#: pay the Θ(players · actions² · profiles) constraint build once.
_LP_SYSTEM_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _correlated_lp_system(game: Game):
    """The CE program of ``game``: ``(profiles, index, A, b, c)``.

    Built once per game, on the integer lattice when the game tabulates:
    each obedience row for player ``i`` is an *integer* row (payoff
    differences at the table's per-player scale σ_i > 0).  Scaling a row
    whose slack keeps coefficient 1 and rhs stays 0 rewrites the slack
    as σ_i times the old one — the feasible set of profile probabilities
    π, and hence the optimal welfare, are exactly those of the unscaled
    Fraction build.  The welfare objective needs one cross-player unit,
    so costs stay exact Fractions (−Σ_i u_i(s)); the fraction-free
    simplex clears them itself.
    """
    try:
        cached = _LP_SYSTEM_CACHE.get(game)
    except TypeError:  # unhashable/unweakrefable game: build uncached
        cached = None
    if cached is not None:
        return cached

    profiles = list(game.enumerate_profiles())
    index = {profile: i for i, profile in enumerate(profiles)}
    num_profiles = len(profiles)
    entry = integer_table_and_scales(game)

    zero = Fraction(0) if entry is None else 0
    one = Fraction(1) if entry is None else 1
    # Obedience: for each (player, recommended, deviation):
    #   Σ_{s_i = rec} π(s) [u_i(dev, s_-i) - u_i(s)] + slack = 0.
    obedience_rows = []
    for player in game.players():
        for recommended in game.actions(player):
            for deviation in game.actions(player):
                if deviation == recommended:
                    continue
                row = [zero] * num_profiles
                for profile in profiles:
                    if profile[player] != recommended:
                        continue
                    deviated = change(profile, deviation, player)
                    if entry is None:
                        row[index[profile]] = game.payoff(
                            player, deviated
                        ) - game.payoff(player, profile)
                    else:
                        table = entry[0]
                        row[index[profile]] = (
                            table[deviated][player] - table[profile][player]
                        )
                obedience_rows.append(row)
    num_slacks = len(obedience_rows)
    constraints = []
    rhs = []
    for k, row in enumerate(obedience_rows):
        slacks = [zero] * num_slacks
        slacks[k] = one
        constraints.append(row + slacks)
        rhs.append(zero)
    # Normalization.
    constraints.append([one] * num_profiles + [zero] * num_slacks)
    rhs.append(one)

    # Objective: maximize total payoff = minimize its negation.  Welfare
    # sums across players, so it gets no per-player scale: exact
    # Fractions preserve the true objective value.
    costs = [
        -sum(game.payoffs(profile), start=Fraction(0)) for profile in profiles
    ] + [Fraction(0)] * num_slacks

    system = (profiles, index, constraints, rhs, costs)
    try:
        _LP_SYSTEM_CACHE[game] = system
    except TypeError:
        pass
    return system


def correlated_equilibrium_lp(game: Game) -> Distribution:
    """One exact correlated equilibrium maximizing total expected payoff.

    Solved with the fraction-free exact simplex: variables are the
    profile probabilities; constraints are the obedience inequalities
    (one slack each), non-negativity, and normalization — built once per
    game on the integer lattice (see :func:`_correlated_lp_system`).
    Always feasible (every Nash equilibrium is one; existence is
    unconditional).
    """
    profiles, index, constraints, rhs, costs = _correlated_lp_system(game)

    result = solve_lp(costs, constraints, rhs)
    if not result.is_optimal:
        raise EquilibriumError(
            "correlated-equilibrium LP infeasible; this contradicts existence"
        )
    dist = {
        profile: result.x[index[profile]]
        for profile in profiles
        if result.x[index[profile]] > 0
    }
    return dist
