"""Correlated equilibria.

The paper positions the rationality authority against Aumann's
correlated equilibria [1]: "one might view the authority as
synchronization mechanisms that are used in correlated equilibria ...
However, the rationality authority is not trusted, whereas
synchronization mechanisms are."  Implementing the concept makes that
contrast executable: a correlated equilibrium is a distribution over
pure profiles whose *obedience constraints* any agent can check, exactly
— so an untrusted inventor can advise a correlated device and prove its
incentive-compatibility, restoring the paper's separation even for this
trusted-mediator concept.

* :func:`is_correlated_equilibrium` — exact check of all obedience
  constraints for an explicit distribution;
* :func:`correlated_equilibrium_lp` — find one by exact LP (maximizing
  total expected payoff), via :mod:`repro.linalg.lp`;
* every Nash equilibrium induces a (product) correlated equilibrium —
  pinned as a property test.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from repro.errors import EquilibriumError
from repro.fractions_util import to_fraction
from repro.games.base import Game
from repro.games.profiles import MixedProfile, PureProfile, change

Distribution = dict[PureProfile, Fraction]


def normalize_distribution(game: Game, dist: Mapping[PureProfile, object]) -> Distribution:
    """Validate a profile distribution: known profiles, non-negative,
    summing exactly to one."""
    out: Distribution = {}
    total = Fraction(0)
    for profile, prob in dist.items():
        profile = game.validate_profile(profile)
        prob = to_fraction(prob)
        if prob < 0:
            raise EquilibriumError(f"negative probability at {profile}")
        if prob > 0:
            out[profile] = out.get(profile, Fraction(0)) + prob
        total += prob
    if total != 1:
        raise EquilibriumError(f"distribution sums to {total}, not 1")
    return out


def obedience_gap(
    game: Game, dist: Distribution, player: int, recommended: int, deviation: int
) -> Fraction:
    """How much ``player`` gains by playing ``deviation`` whenever the
    device recommends ``recommended`` (positive = profitable deviation).

    This is the left-hand side of one correlated-equilibrium constraint:
    Σ_{s: s_i = recommended} π(s) [u_i(deviation, s_-i) - u_i(s)].
    """
    gain = Fraction(0)
    for profile, prob in dist.items():
        if profile[player] != recommended:
            continue
        deviated = change(profile, deviation, player)
        gain += prob * (game.payoff(player, deviated) - game.payoff(player, profile))
    return gain


def is_correlated_equilibrium(game: Game, dist: Mapping[PureProfile, object]) -> bool:
    """Exact check of every obedience constraint."""
    dist = normalize_distribution(game, dist)
    for player in game.players():
        for recommended in game.actions(player):
            for deviation in game.actions(player):
                if deviation == recommended:
                    continue
                if obedience_gap(game, dist, player, recommended, deviation) > 0:
                    return False
    return True


def product_distribution(game: Game, mixed: MixedProfile) -> Distribution:
    """The correlated device induced by independent mixing (a Nash
    profile becomes a correlated equilibrium this way)."""
    dist: Distribution = {}
    for profile in game.enumerate_profiles():
        prob = mixed.probability(profile)
        if prob > 0:
            dist[profile] = prob
    return dist


def correlated_equilibrium_lp(game: Game) -> Distribution:
    """One exact correlated equilibrium maximizing total expected payoff.

    Solved with the exact simplex: variables are the profile
    probabilities; constraints are the obedience inequalities (one slack
    each), non-negativity, and normalization.  Always feasible (every
    Nash equilibrium is one; existence is unconditional).
    """
    profiles = list(game.enumerate_profiles())
    index = {profile: i for i, profile in enumerate(profiles)}
    num_profiles = len(profiles)

    constraints: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    # Obedience: for each (player, recommended, deviation):
    #   Σ_{s_i = rec} π(s) [u_i(dev, s_-i) - u_i(s)] + slack = 0.
    obedience_rows = []
    for player in game.players():
        for recommended in game.actions(player):
            for deviation in game.actions(player):
                if deviation == recommended:
                    continue
                row = [Fraction(0)] * num_profiles
                for profile in profiles:
                    if profile[player] != recommended:
                        continue
                    deviated = change(profile, deviation, player)
                    row[index[profile]] = game.payoff(player, deviated) - game.payoff(
                        player, profile
                    )
                obedience_rows.append(row)
    num_slacks = len(obedience_rows)
    for k, row in enumerate(obedience_rows):
        slacks = [Fraction(0)] * num_slacks
        slacks[k] = Fraction(1)
        constraints.append(row + slacks)
        rhs.append(Fraction(0))
    # Normalization.
    constraints.append([Fraction(1)] * num_profiles + [Fraction(0)] * num_slacks)
    rhs.append(Fraction(1))

    # Objective: maximize total payoff = minimize its negation.
    costs = [
        -sum(game.payoffs(profile), start=Fraction(0)) for profile in profiles
    ] + [Fraction(0)] * num_slacks

    from repro.linalg.lp import solve_lp

    result = solve_lp(costs, constraints, rhs)
    if not result.is_optimal:
        raise EquilibriumError(
            "correlated-equilibrium LP infeasible; this contradicts existence"
        )
    dist = {
        profile: result.x[index[profile]]
        for profile in profiles
        if result.x[index[profile]] > 0
    }
    return dist
