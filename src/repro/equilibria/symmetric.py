"""Symmetric-equilibrium solvers (the inventor's side of Sect. 5).

For the participation game the equilibrium probability p solves the
indifference identity — Eq. (4) for k = 2, Eq. (5) in general — and "p's
value is hard to compute but, once it is given, it is easy to ... verify
the equilibrium play".  These solvers are that hard-to-compute side:

* :func:`solve_k2_closed_form` — the exact quadratic solution for
  n = 3, k = 2 (the paper's worked example yields p = 1/4 exactly);
* :func:`find_interior_equilibria` — sign-scan plus exact-rational
  bisection for any two-action symmetric game, any degree;
* :func:`symmetric_equilibria` — interior roots plus the boundary checks.

Bisection works over Fractions so the returned p carries an explicit
guarantee: ``|indifference_gap(p)| <= tolerance`` with exact arithmetic.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.errors import EquilibriumError, GameError
from repro.fractions_util import to_fraction
from repro.games.participation import ParticipationGame
from repro.games.symmetric import SymmetricTwoActionGame
from repro.linalg.backend import resolve_policy

_DEFAULT_TOL = Fraction(1, 10**12)
_DEFAULT_GRID = 256

#: Float pre-scan: grid values within this relative band of zero are
#: treated as sign-ambiguous and re-decided exactly.
_FLOAT_ZERO_BAND = 1e-9


def exact_sqrt(value: Fraction) -> Fraction | None:
    """The exact rational square root of ``value``, or None.

    Used to recognize when the k=2, n=3 quadratic has rational roots (as
    in the paper's example with discriminant 1/4).
    """
    value = to_fraction(value)
    if value < 0:
        return None
    num_root = math.isqrt(value.numerator)
    den_root = math.isqrt(value.denominator)
    if num_root * num_root != value.numerator:
        return None
    if den_root * den_root != value.denominator:
        return None
    return Fraction(num_root, den_root)


def solve_k2_closed_form(game: ParticipationGame) -> tuple[Fraction, Fraction] | None:
    """Exact equilibrium pair for n = 3, k = 2 via the quadratic formula.

    Eq. (4) with n = 3 reads  c = 2 v p (1 - p), i.e.
    ``p^2 - p + c/(2v) = 0``; the two roots are
    ``(1 ± sqrt(1 - 2c/v)) / 2``.  Returns ``(small, large)`` when the
    roots are rational (exactly representable), else None — callers fall
    back to bisection.
    """
    if game.threshold != 2 or game.num_players != 3:
        return None
    discriminant = 1 - 2 * game.cost / game.value
    if discriminant < 0:
        return None
    root = exact_sqrt(discriminant)
    if root is None:
        return None
    small = (1 - root) / 2
    large = (1 + root) / 2
    return small, large


def _float_gap_table(game: SymmetricTwoActionGame) -> list[float]:
    """``float(u(1, x) - u(0, x))`` for every opponent count ``x``.

    The difference is taken in exact arithmetic *before* the float
    conversion: payoffs sharing a huge common term (u = B + small) would
    otherwise cancel catastrophically and flatten the table to zero.
    """
    return [
        float(game.compact_payoff(1, x) - game.compact_payoff(0, x))
        for x in range(game.num_players)
    ]


def _float_gap(coeffs: list[float], opponents: int, p: float) -> float:
    """The indifference gap at ``p`` in float64 (search phase only).

    ``coeffs[x]`` is ``comb(opponents, x) * table[x]`` — the binomial
    weights are constant across the grid, so they are folded in once by
    the caller rather than recomputed for all 257 grid points.
    """
    gap = 0.0
    q = 1.0 - p
    for x in range(opponents + 1):
        gap += coeffs[x] * (p ** x) * (q ** (opponents - x))
    return gap


def _candidate_intervals(values: list[float], scale: float) -> list[int]:
    """Grid intervals a float scan cannot rule out as root-bearing.

    An interval qualifies when the endpoint signs differ, or either
    endpoint sits inside the zero band (float cannot call the sign).
    ``scale`` is the magnitude of the gap *table* — the binomial sum's
    error is a few ulps of that, not of the (possibly cancelled) sum
    itself.  Everything returned is re-decided with exact arithmetic.
    """
    band = _FLOAT_ZERO_BAND * (scale or 1.0)
    out = []
    for i in range(len(values) - 1):
        lo, hi = values[i], values[i + 1]
        if abs(lo) <= band or abs(hi) <= band or (lo < 0.0) != (hi < 0.0):
            out.append(i)
    return out


def find_interior_equilibria(
    game: SymmetricTwoActionGame,
    tolerance: Fraction = _DEFAULT_TOL,
    grid: int = _DEFAULT_GRID,
    policy=None,
) -> tuple[Fraction, ...]:
    """Interior symmetric equilibria: roots of the indifference gap in (0, 1).

    Scans a uniform grid for sign changes and exact zeros, then bisects
    each bracket with exact rational arithmetic until the bracket width
    is below ``tolerance``.  Exact rational roots hit by the scan or by a
    bisection midpoint are returned exactly.

    ``policy`` selects the search backend for the *scan*: on the float
    backend the grid is evaluated in float64 (the exact binomial sums
    over a 256-point grid dominate the seed's cost) and only the
    intervals the floats cannot rule out are re-evaluated exactly; the
    bisection itself, and therefore every returned root, is exact
    arithmetic in every mode.
    """
    tolerance = to_fraction(tolerance)
    if tolerance <= 0:
        raise GameError("tolerance must be positive")
    points = [Fraction(i, grid) for i in range(grid + 1)]
    backend = resolve_policy(policy).search_backend(game.num_players)

    use_float = not backend.exact
    if use_float:
        try:
            table = _float_gap_table(game)
            opponents = game.num_players - 1
            coeffs = [
                math.comb(opponents, x) * t for x, t in enumerate(table)
            ]
            float_values = [
                _float_gap(coeffs, opponents, i / grid) for i in range(grid + 1)
            ]
        except OverflowError:
            # math.comb or a payoff magnitude exceeded float range (very
            # large player counts); the scan re-routes to the exact path.
            use_float = False
        else:
            table_scale = max((abs(t) for t in table), default=0.0)
            intervals = _candidate_intervals(float_values, table_scale)
            values = {}  # exact values, computed lazily per needed point
    if not use_float:
        intervals = range(grid)
        values = [game.indifference_gap(p) for p in points]

    def exact_value(i: int) -> Fraction:
        if not use_float:
            return values[i]
        if i not in values:
            values[i] = game.indifference_gap(points[i])
        return values[i]

    roots: list[Fraction] = []
    for i in intervals:
        p_lo, p_hi = points[i], points[i + 1]
        v_lo, v_hi = exact_value(i), exact_value(i + 1)
        if v_lo == 0 and 0 < p_lo < 1:
            if p_lo not in roots:
                roots.append(p_lo)
            continue
        if v_lo * v_hi < 0:
            root = _bisect(game, p_lo, p_hi, v_lo, tolerance)
            if root not in roots:
                roots.append(root)
    # The right grid endpoint is p = 1, a boundary point by definition,
    # so no separate interior-zero check is needed there.
    return tuple(sorted(roots))


def _bisect(
    game: SymmetricTwoActionGame,
    lo: Fraction,
    hi: Fraction,
    value_lo: Fraction,
    tolerance: Fraction,
) -> Fraction:
    """Exact-rational bisection on the indifference gap."""
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        value_mid = game.indifference_gap(mid)
        if value_mid == 0:
            return mid
        if (value_mid > 0) == (value_lo > 0):
            lo, value_lo = mid, value_mid
        else:
            hi = mid
    return (lo + hi) / 2


def symmetric_equilibria(
    game: SymmetricTwoActionGame,
    tolerance: Fraction = _DEFAULT_TOL,
    grid: int = _DEFAULT_GRID,
    policy=None,
) -> tuple[Fraction, ...]:
    """All symmetric equilibria: exact boundary checks plus interior roots."""
    out: list[Fraction] = []
    if game.is_symmetric_equilibrium(0):
        out.append(Fraction(0))
    out.extend(
        find_interior_equilibria(game, tolerance=tolerance, grid=grid, policy=policy)
    )
    if game.is_symmetric_equilibrium(1):
        out.append(Fraction(1))
    return tuple(sorted(set(out)))


def participation_equilibrium(
    game: ParticipationGame,
    prefer: str = "small",
    tolerance: Fraction = _DEFAULT_TOL,
    policy=None,
) -> Fraction:
    """The inventor's advised participation probability p.

    Tries the exact closed form first (n = 3, k = 2 with a rational
    discriminant — the paper's example); otherwise bisects Eq. (5).
    ``prefer`` selects among multiple interior equilibria: the paper's
    example uses the *smaller* root (p = 1/4, not 3/4), and the existence
    of the other root is exactly why agents must cross-check that the
    inventor sent everyone the same p.  ``policy`` selects the scan
    backend (the roots themselves are exact in every mode); a float scan
    that comes back empty is re-run exactly before concluding there is
    no equilibrium.
    """
    if prefer not in ("small", "large"):
        raise GameError("prefer must be 'small' or 'large'")
    closed = solve_k2_closed_form(game)
    if closed is not None:
        small, large = closed
        candidates = [p for p in (small, large) if 0 < p < 1]
        if candidates:
            return candidates[0] if prefer == "small" else candidates[-1]
    roots = find_interior_equilibria(game, tolerance=tolerance, policy=policy)
    if not roots and not resolve_policy(policy).search_backend(game.num_players).exact:
        roots = find_interior_equilibria(game, tolerance=tolerance)
    if not roots:
        raise EquilibriumError(
            "no interior symmetric equilibrium; the fee may exceed the "
            "maximum of the incentive curve"
        )
    return roots[0] if prefer == "small" else roots[-1]
