"""Helpers for exact rational arithmetic.

The paper types utilities as functions into the integers and builds
*checkable* proofs on top of them; any epsilon-tolerance in the checker
would undermine the "provable" part.  We therefore standardize on
:class:`fractions.Fraction` for every quantity a proof touches, and this
module centralizes the conversions between user input (ints, floats,
strings, numpy scalars) and exact rationals.
"""

from __future__ import annotations

import hashlib
import numbers
from fractions import Fraction
from typing import Iterable, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

Rational = Fraction

#: Values accepted wherever the library expects an exact number.
RationalLike = "int | Fraction | str | float | numbers.Integral"


def to_fraction(value) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Integers, Fractions and strings convert exactly.  Floats are converted
    via ``Fraction(value)`` (exact binary expansion) — callers that want a
    *decimal* reading of a float should pass a string instead.  Numpy
    integer and floating scalars are unwrapped first.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid payoff values")
    if isinstance(value, numbers.Integral):
        return Fraction(int(value))
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value)
    if np is not None and isinstance(value, np.floating):
        return Fraction(float(value))
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


def fraction_vector(values: Iterable) -> tuple[Fraction, ...]:
    """Convert an iterable of numbers to a tuple of Fractions.

    Already-exact input — a tuple whose entries are all Fractions — is
    returned unchanged.  Games normalize their payoffs once at
    construction, so the hot solver paths hit this fast path and skip
    re-converting (and re-allocating) the same exact data per call.
    """
    if type(values) is tuple and all(type(v) is Fraction for v in values):
        return values
    return tuple(to_fraction(v) for v in values)


def fraction_matrix(rows: Iterable[Iterable]) -> tuple[tuple[Fraction, ...], ...]:
    """Convert a 2-D iterable of numbers to a tuple-of-tuples of Fractions.

    Raises ``ValueError`` if the rows are ragged.  Like
    :func:`fraction_vector`, a tuple-of-tuples of Fractions (the form
    every game stores) passes through untouched after a shape check.
    """
    if type(rows) is tuple and all(
        type(row) is tuple and all(type(v) is Fraction for v in row)
        for row in rows
    ):
        if rows and any(len(row) != len(rows[0]) for row in rows):
            raise ValueError("matrix rows have unequal lengths")
        return rows
    out = tuple(fraction_vector(row) for row in rows)
    if out and any(len(row) != len(out[0]) for row in out):
        raise ValueError("matrix rows have unequal lengths")
    return out


def exact_fingerprint(*matrices: Iterable[Iterable], label: str = "") -> str:
    """Canonical fingerprint of exact rational matrices (SHA-256 hex).

    The key property is *exact-equality semantics*: two matrix tuples
    fingerprint identically iff every entry is the same rational number
    (``Fraction`` normalizes, so ``0.5``, ``"1/2"`` and ``Fraction(2, 4)``
    all hash as ``1/2``), and any difference in shape, entry order or
    value — however small — changes the digest.  This is the one place
    that defines how a game's payoffs are canonicalized into a cache
    key; every solve cache (the per-inventor one and the cross-run
    :class:`~repro.service.cache.SolveCache`) must key through here so
    their notions of "the same game" cannot drift apart.

    ``label`` namespaces the digest (e.g. the game class) so two
    structurally different objects with coincidentally equal matrices
    do not collide across kinds.
    """
    digest = hashlib.sha256()
    digest.update(label.encode("utf-8"))
    for matrix in matrices:
        digest.update(b"|M")
        for row in matrix:
            digest.update(b"|R")
            for value in row:
                f = to_fraction(value)
                digest.update(b"%d/%d;" % (f.numerator, f.denominator))
    return digest.hexdigest()


def is_probability_vector(values: Sequence[Fraction]) -> bool:
    """True iff all entries are in [0, 1] and they sum to exactly 1."""
    if not values:
        return False
    if any(v < 0 or v > 1 for v in values):
        return False
    return sum(values) == 1


def as_floats(values: Iterable[Fraction]):
    """Convert exact rationals to floats for reporting.

    Returns a numpy array when numpy is available, a plain list of
    floats otherwise — reporting code treats both uniformly (iteration
    and indexing), so the library's stdlib-only mode keeps working.
    """
    floats = [float(v) for v in values]
    if np is None:
        return floats
    return np.array(floats, dtype=float)


def dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    """Exact dot product of two equal-length rational vectors.

    ``math.sumprod``-style accumulation: one running Fraction total
    (no per-term temporaries beyond the product) and zero terms are
    skipped outright — expected-payoff checks dot sparse mixed
    strategies against payoff rows, so most terms contribute exactly
    nothing and every skipped term saves a gcd-normalizing Fraction
    add.  Skipping adds of exact zeros cannot change the exact result.
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    total = Fraction(0)
    for x, y in zip(a, b):
        if x and y:
            total += x * y
    return total


def mat_vec(matrix: Sequence[Sequence[Fraction]], vec: Sequence[Fraction]) -> tuple[Fraction, ...]:
    """Exact matrix-vector product.

    The vector's nonzero entries are gathered once and shared across
    every row's accumulation (see :func:`dot` for why skipping exact
    zeros is free and sound).
    """
    nonzero = [(j, v) for j, v in enumerate(vec) if v]
    nvec = len(vec)
    out = []
    for row in matrix:
        if len(row) != nvec:
            raise ValueError(f"length mismatch: {len(row)} vs {nvec}")
        total = Fraction(0)
        for j, v in nonzero:
            x = row[j]
            if x:
                total += x * v
        out.append(total)
    return tuple(out)


def vec_mat(vec: Sequence[Fraction], matrix: Sequence[Sequence[Fraction]]) -> tuple[Fraction, ...]:
    """Exact vector-matrix product (row vector times matrix).

    Accumulates over the vector's nonzero entries only — one running
    Fraction per output column, rows with zero weight never touched.
    """
    if not matrix:
        return ()
    ncols = len(matrix[0])
    if len(vec) != len(matrix):
        raise ValueError(f"length mismatch: {len(vec)} vs {len(matrix)} rows")
    totals = [Fraction(0)] * ncols
    for v, row in zip(vec, matrix):
        if len(row) != ncols:
            raise ValueError(f"length mismatch: {len(row)} vs {ncols} columns")
        if not v:
            continue
        for j, x in enumerate(row):
            if x:
                totals[j] += v * x
    return tuple(totals)
