"""repro — a full reproduction of "Rationality Authority for Provable
Rational Behavior" (Dolev, Panagopoulou, Rabie, Schiller, Spirakis;
PODC 2011 brief announcement, LNCS 9295 full version).

The package layers, bottom to top:

* :mod:`repro.linalg` — exact rational linear algebra;
* :mod:`repro.games` — strategic-form / bimatrix / symmetric /
  participation / congestion games;
* :mod:`repro.equilibria` — best replies, pure and mixed Nash,
  support enumeration, Lemke-Howson, symmetric solvers;
* :mod:`repro.proofs` — the Fig. 2 Coq-style certificate language,
  builder and checking kernel;
* :mod:`repro.interactive` — the P1 and P2 interactive proofs with
  transcripts, privacy accounting and adversaries;
* :mod:`repro.crypto` — commitments and signature simulation;
* :mod:`repro.online` — on-line congestion games, the parallel-links
  model, the inventor's statistics and the Fig. 7 simulation;
* :mod:`repro.core` — the rationality authority itself: actors,
  advice, verifier registry, reputation, audit, sessions.
"""

__version__ = "1.0.0"

from repro.errors import (
    AdviceRejected,
    CommitmentError,
    EquilibriumError,
    GameError,
    LinearAlgebraError,
    ProfileError,
    ProofError,
    ProofRejected,
    ProtocolError,
    ReproError,
    SignatureError,
    TranscriptError,
    VerificationFailure,
)

__all__ = [
    "__version__",
    "ReproError",
    "GameError",
    "ProfileError",
    "EquilibriumError",
    "LinearAlgebraError",
    "ProofError",
    "ProofRejected",
    "TranscriptError",
    "VerificationFailure",
    "CommitmentError",
    "SignatureError",
    "ProtocolError",
    "AdviceRejected",
]
