"""repro — a full reproduction of "Rationality Authority for Provable
Rational Behavior" (Dolev, Panagopoulou, Rabie, Schiller, Spirakis;
PODC 2011 brief announcement, LNCS 9295 full version).

The package layers, bottom to top:

* :mod:`repro.linalg` — rational linear algebra plus the pluggable
  numeric-backend seam (see *Architecture & backends* below);
* :mod:`repro.games` — strategic-form / bimatrix / symmetric /
  participation / congestion games;
* :mod:`repro.equilibria` — best replies, pure and mixed Nash,
  support enumeration, Lemke-Howson, symmetric solvers;
* :mod:`repro.proofs` — the Fig. 2 Coq-style certificate language,
  builder and checking kernel;
* :mod:`repro.interactive` — the P1 and P2 interactive proofs with
  transcripts, privacy accounting and adversaries;
* :mod:`repro.crypto` — commitments and signature simulation;
* :mod:`repro.online` — on-line congestion games, the parallel-links
  model, the inventor's statistics and the Fig. 7 simulation;
* :mod:`repro.core` — the rationality authority itself: actors,
  advice, verifier registry, reputation, audit, sessions.

Architecture & backends
=======================

The paper's central asymmetry — *finding* an equilibrium is PPAD-hard
while *verifying* one is cheap and must be exact — is mirrored by a
two-phase solver pipeline rooted in :mod:`repro.linalg.backend`:

1. **Search** runs on a pluggable
   :class:`~repro.linalg.backend.NumericBackend`.  The default
   :class:`~repro.linalg.backend.ExactBackend` keeps the original
   Fraction semantics bit for bit; the stdlib-only
   :class:`~repro.linalg.backend.FloatBackend` runs the same
   elimination/simplex in float64 with pivot tolerances, avoiding the
   rational coefficient growth that dominates exact pivoting.
2. **Certification** is always exact.  Float-found candidates are
   reconstructed as Fractions by a support-restricted exact re-solve
   and must pass the exact Lemma-1 conditions
   (:func:`repro.equilibria.mixed.certify_mixed_profile`) before they
   leave the solver layer; any doubt falls back to the exact path.

Callers select a mode through
:class:`~repro.linalg.backend.BackendPolicy` — ``"exact"``,
``"float+certify"`` or ``"auto"`` — which the inventors in
:mod:`repro.core.actors` accept, advertise on each
:class:`~repro.core.advice.Advice`, and the session records in the
audit log.  Verification procedures stay exact in every mode: the
backend changes what the *inventor's search* costs, never what a proof
obliges.
"""

__version__ = "1.0.0"

from repro.errors import (
    AdviceRejected,
    CommitmentError,
    EquilibriumError,
    GameError,
    LinearAlgebraError,
    ProfileError,
    ProofError,
    ProofRejected,
    ProtocolError,
    ReproError,
    SignatureError,
    TranscriptError,
    VerificationFailure,
)

__all__ = [
    "__version__",
    "ReproError",
    "GameError",
    "ProfileError",
    "EquilibriumError",
    "LinearAlgebraError",
    "ProofError",
    "ProofRejected",
    "TranscriptError",
    "VerificationFailure",
    "CommitmentError",
    "SignatureError",
    "ProtocolError",
    "AdviceRejected",
]
