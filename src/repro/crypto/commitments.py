"""Hash commitments.

The P2 private proof (Fig. 4) relies on the prover answering membership
queries honestly; a lying prover risks detection only if its answers are
*bound* before it sees the queries.  We make that binding explicit with
the standard hash-commitment construction: commit = SHA-256(nonce || value),
opened later by revealing (nonce, value).

This is the simulation of a real cryptographic commitment documented in
DESIGN.md: hiding holds against the honest-but-curious parties modelled
here (the nonce is 32 random bytes), and binding holds up to SHA-256
collisions — both adequate to exercise the protocol logic the paper
describes ("some of the techniques resemble zero-knowledge proofs").
"""

from __future__ import annotations

import hashlib
import json
import secrets
from dataclasses import dataclass
from typing import Any

from repro.errors import CommitmentError

_NONCE_BYTES = 32


def _canonical(value: Any) -> bytes:
    """Canonical byte encoding of a JSON-able value."""
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CommitmentError(f"value is not JSON-encodable: {exc}") from exc


@dataclass(frozen=True)
class Commitment:
    """The public half of a commitment: the digest only."""

    digest: str

    def verify_opening(self, opening: "Opening") -> bool:
        """True iff ``opening`` opens this commitment."""
        return _digest(opening.nonce, opening.value) == self.digest


@dataclass(frozen=True)
class Opening:
    """The private half: nonce and committed value."""

    nonce: str
    value: Any


def _digest(nonce: str, value: Any) -> str:
    h = hashlib.sha256()
    h.update(bytes.fromhex(nonce))
    h.update(_canonical(value))
    return h.hexdigest()


def commit(value: Any, rng=None) -> tuple[Commitment, Opening]:
    """Commit to ``value``; returns (public commitment, private opening).

    ``rng`` may be a seeded ``random.Random`` for deterministic tests;
    by default the nonce comes from the OS CSPRNG.
    """
    if rng is None:
        nonce = secrets.token_bytes(_NONCE_BYTES).hex()
    else:
        nonce = bytes(rng.randrange(256) for _ in range(_NONCE_BYTES)).hex()
    digest = _digest(nonce, value)
    return Commitment(digest=digest), Opening(nonce=nonce, value=value)


def open_commitment(commitment: Commitment, opening: Opening) -> Any:
    """Open a commitment, raising :class:`CommitmentError` on mismatch."""
    if not commitment.verify_opening(opening):
        raise CommitmentError("opening does not match commitment digest")
    return opening.value
