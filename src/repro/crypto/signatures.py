"""Signature simulation with an in-process key registry.

Footnote 3 of the paper: "the system can require the inventor to publish
the average loads with its signature at each round ... then the inventor
is kept responsible when found cheating."  We simulate the PKI with
HMAC-SHA256: each identity holds a secret key; the :class:`KeyRegistry`
plays the role of the certificate authority, letting anyone *verify* a
signature without being able to forge one (verification goes through the
registry, which holds the keys — the trust substitution is documented in
DESIGN.md).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
from dataclasses import dataclass
from typing import Any

from repro.errors import SignatureError


def _canonical(value: Any) -> bytes:
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SignatureError(f"value is not JSON-encodable: {exc}") from exc


@dataclass(frozen=True)
class Signature:
    """A detached signature over a canonical encoding."""

    signer: str
    mac: str


class KeyRegistry:
    """Holds signing keys and verifies signatures — the simulated PKI.

    Identities register once (generating a fresh random key); signing
    requires the identity's key handle, verification only the registry.
    Tests for the audit trail rely on: (a) signatures verify for the
    honest signer, (b) altering the payload or impersonating another
    identity fails.
    """

    def __init__(self):
        self._keys: dict[str, bytes] = {}

    def register(self, identity: str, rng=None) -> None:
        """Register a new identity with a fresh key."""
        if identity in self._keys:
            raise SignatureError(f"identity {identity!r} already registered")
        if rng is None:
            key = secrets.token_bytes(32)
        else:
            key = bytes(rng.randrange(256) for _ in range(32))
        self._keys[identity] = key

    def is_registered(self, identity: str) -> bool:
        return identity in self._keys

    def sign(self, identity: str, value: Any) -> Signature:
        """Sign a JSON-able value as ``identity``."""
        try:
            key = self._keys[identity]
        except KeyError:
            raise SignatureError(f"identity {identity!r} is not registered") from None
        mac = hmac.new(key, _canonical(value), hashlib.sha256).hexdigest()
        return Signature(signer=identity, mac=mac)

    def verify(self, signature: Signature, value: Any) -> bool:
        """True iff ``signature`` is valid for ``value`` under its signer's key."""
        key = self._keys.get(signature.signer)
        if key is None:
            return False
        expected = hmac.new(key, _canonical(value), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, signature.mac)

    def verify_or_raise(self, signature: Signature, value: Any) -> None:
        if not self.verify(signature, value):
            raise SignatureError(
                f"signature by {signature.signer!r} does not verify"
            )
