"""Crypto substrate: hash commitments and HMAC signature simulation."""

from repro.crypto.commitments import Commitment, Opening, commit, open_commitment
from repro.crypto.signatures import KeyRegistry, Signature

__all__ = [
    "Commitment",
    "Opening",
    "commit",
    "open_commitment",
    "KeyRegistry",
    "Signature",
]
