"""Interactive-proof transcripts with exact communication accounting.

Lemma 1 claims "the number of bits communicated is O(n + m)" for P1 —
the prover "can actually send a vector of zeroes and ones, where the ones
indicate the support indices".  To benchmark that claim we meter every
message: support sets are charged their bit-vector length, probability
vectors and values their canonical JSON length, and query/answer rounds
their exact payloads.

A :class:`Transcript` is append-only and ordered; the privacy analysis
(:mod:`repro.interactive.privacy`) replays it to reconstruct exactly what
each party could have learned.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterator

from repro.errors import TranscriptError

PROVER = "prover"
VERIFIER = "verifier"


def encode_value(value: Any) -> Any:
    """JSON-able encoding with exact Fractions as "p/q" strings."""
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TranscriptError(f"cannot encode {type(value).__name__} in a transcript")


def payload_bits(payload: Any) -> int:
    """Charged size of a payload, in bits.

    Dict payloads may carry a ``"support_bitvector"`` entry — a string of
    '0'/'1' characters — charged one bit per character (the Lemma 1
    encoding).  Everything else is charged 8 bits per byte of canonical
    JSON.
    """
    bits = 0
    rest = payload
    if isinstance(payload, dict) and "support_bitvector" in payload:
        vector = payload["support_bitvector"]
        if not isinstance(vector, str) or set(vector) - {"0", "1"}:
            raise TranscriptError("support_bitvector must be a string of 0s and 1s")
        bits += len(vector)
        rest = {k: v for k, v in payload.items() if k != "support_bitvector"}
        if not rest:
            return bits
    encoded = json.dumps(encode_value(rest), sort_keys=True, separators=(",", ":"))
    return bits + 8 * len(encoded.encode("utf-8"))


@dataclass(frozen=True)
class TranscriptMessage:
    """One message: who sent it, a protocol kind tag, and the payload."""

    sender: str
    kind: str
    payload: Any

    def bits(self) -> int:
        return payload_bits(self.payload)


@dataclass
class Transcript:
    """Append-only message log for one interactive-proof session."""

    protocol: str
    messages: list[TranscriptMessage] = field(default_factory=list)

    def record(self, sender: str, kind: str, payload: Any) -> TranscriptMessage:
        if sender not in (PROVER, VERIFIER):
            raise TranscriptError(f"unknown sender {sender!r}")
        message = TranscriptMessage(sender=sender, kind=kind, payload=payload)
        self.messages.append(message)
        return message

    def __iter__(self) -> Iterator[TranscriptMessage]:
        return iter(self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    def total_bits(self) -> int:
        """Total bits exchanged, both directions."""
        return sum(m.bits() for m in self.messages)

    def bits_from(self, sender: str) -> int:
        """Bits sent by one party."""
        return sum(m.bits() for m in self.messages if m.sender == sender)

    def messages_of_kind(self, kind: str) -> tuple[TranscriptMessage, ...]:
        return tuple(m for m in self.messages if m.kind == kind)

    def digest_view(self) -> list[dict]:
        """A JSON-able summary for audit records."""
        return [
            {"sender": m.sender, "kind": m.kind, "bits": m.bits()}
            for m in self.messages
        ]


def support_bitvector(support: tuple[int, ...], length: int) -> str:
    """Encode a support set as Lemma 1's vector of zeroes and ones."""
    marks = set(support)
    if marks and (min(marks) < 0 or max(marks) >= length):
        raise TranscriptError(f"support {support} out of range for length {length}")
    return "".join("1" if i in marks else "0" for i in range(length))


def support_from_bitvector(vector: str) -> tuple[int, ...]:
    """Decode Lemma 1's bit-vector back into an index set."""
    if set(vector) - {"0", "1"}:
        raise TranscriptError("bit-vector must contain only 0s and 1s")
    return tuple(i for i, bit in enumerate(vector) if bit == "1")
