"""The private interactive proof P2 (Fig. 4).

Protocol, for the row agent (the column agent mirrors it):

* **Prover**: "Send to each agent just its support, its probabilities,
  and the values λ1, λ2."
* **Verifier**: repeatedly "asks the prover for two random indices
  j1, j2" of the *other* agent's strategy space.  An honest prover
  answers whether each index is in the other support S2.  The verifier
  computes the other agent's expected gains λ2(j1), λ2(j2) against its
  own probabilities and checks:

  - "both j's in S2":  λ2(j1) = λ2(j2) = λ2;
  - "1-in/1-out" (say j1 in):  λ2(j1) = λ2 >= λ2(j2).

  "The test is inconclusive for both j1, j2 ∉ S2, but at least one will
  be in with probability at least 1/n.  Thus, on average, O(n) random
  queries of the verifier will verify the equilibrium play."

Two hardening measures beyond the letter of Fig. 4, both consistent with
its intent:

* an out-of-support index whose expected gain *exceeds* λ2 is an outright
  equilibrium violation and is rejected immediately (it can only occur if
  the prover lies or the claimed values are wrong);
* optionally the prover first *commits* to the entire membership
  bit-vector (hash commitments), making answers non-adaptive — the
  binding the "zero-knowledge style" of the paper presumes.

What the verifier never sees: the other agent's support as a whole, or
any probability of the other agent — that is Remark 2, demonstrated in
:mod:`repro.interactive.privacy`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from repro.crypto.commitments import Commitment, Opening, commit
from repro.errors import EquilibriumError, VerificationFailure
from repro.games.bimatrix import COLUMN, ROW, BimatrixGame
from repro.games.profiles import MixedProfile
from repro.interactive.transcripts import PROVER, Transcript, VERIFIER

_ZERO = Fraction(0)


@dataclass(frozen=True)
class P2Disclosure:
    """What the P2 prover sends one agent: its own side plus both values."""

    own_support: tuple[int, ...]
    own_probabilities: tuple[Fraction, ...]
    own_value: Fraction
    other_value: Fraction
    membership_commitments: tuple[Commitment, ...] = ()


@dataclass(frozen=True)
class QueryRecord:
    """One membership query and its (possibly dishonest) answer."""

    index: int
    answered_in_support: bool


@dataclass(frozen=True)
class P2Report:
    """Outcome of one agent's P2 verification.

    ``conclusive_rounds`` counts rounds with at least one in-support
    index; acceptance requires ``required_conclusive`` of them.  ``rounds``
    is the total number of two-query rounds used — the Remark 3 quantity.
    ``queries`` is the full query log (the privacy ledger's raw material).
    """

    accepted: bool
    conclusive: bool
    reason: str
    rounds: int
    conclusive_rounds: int
    queries: tuple[QueryRecord, ...]


class P2Prover:
    """The honest inventor's side of P2 for one advised agent."""

    def __init__(
        self,
        game: BimatrixGame,
        equilibrium: MixedProfile,
        agent: int,
        use_commitments: bool = False,
        rng: random.Random | None = None,
    ):
        if agent not in (ROW, COLUMN):
            raise EquilibriumError("agent must be ROW or COLUMN")
        game._unpack(equilibrium)  # shape validation
        self._game = game
        self._equilibrium = equilibrium
        self._agent = agent
        self._other = COLUMN if agent == ROW else ROW
        self._use_commitments = use_commitments
        self._rng = rng or random.Random()  # repro: allow[R2] -- interactive-demo entropy; replayable runs pass an explicit seeded rng
        self._openings: dict[int, Opening] = {}

    @property
    def agent(self) -> int:
        return self._agent

    @property
    def game(self) -> BimatrixGame:
        return self._game

    def true_membership(self, index: int) -> bool:
        """Ground truth: is ``index`` in the other agent's support?"""
        return index in self._equilibrium.support(self._other)

    def disclose(self, transcript: Transcript | None = None) -> P2Disclosure:
        """Send the agent its own support, probabilities and (λ1, λ2)."""
        own_support = self._equilibrium.support(self._agent)
        own_probs = self._equilibrium.distribution(self._agent)
        own_value = self._game.expected_payoff(self._agent, self._equilibrium)
        other_value = self._game.expected_payoff(self._other, self._equilibrium)

        commitments: tuple[Commitment, ...] = ()
        if self._use_commitments:
            num_other = self._game.action_counts[self._other]
            pairs = [
                commit({"index": j, "member": self.true_membership(j)}, rng=self._rng)
                for j in range(num_other)
            ]
            commitments = tuple(c for c, _o in pairs)
            self._openings = {j: o for j, (_c, o) in enumerate(pairs)}

        disclosure = P2Disclosure(
            own_support=own_support,
            own_probabilities=own_probs,
            own_value=own_value,
            other_value=other_value,
            membership_commitments=commitments,
        )
        if transcript is not None:
            transcript.record(
                PROVER,
                "p2.disclosure",
                {
                    "agent": self._agent,
                    "own_support": list(own_support),
                    "own_probabilities": list(own_probs),
                    "own_value": own_value,
                    "other_value": other_value,
                    "num_commitments": len(commitments),
                },
            )
        return disclosure

    def answer_membership(
        self, index: int, transcript: Transcript | None = None
    ) -> bool:
        """Answer one membership query (honestly, for this prover)."""
        answer = self.true_membership(index)
        if transcript is not None:
            transcript.record(
                PROVER, "p2.answer", {"index": index, "in_support": answer}
            )
        return answer

    def open_membership(self, index: int) -> Opening:
        """Open the commitment for ``index`` (commitment mode only)."""
        try:
            return self._openings[index]
        except KeyError:
            raise VerificationFailure(
                f"no commitment opening for index {index}"
            ) from None


class P2Verifier:
    """One agent's P2 verifier.

    ``required_conclusive`` is the k of Remark 3: with large supports a
    constant number of conclusive rounds suffices, and the expected
    number of rounds to reach them is constant.
    """

    def __init__(
        self,
        game: BimatrixGame,
        agent: int,
        rng: random.Random,
        max_rounds: int | None = None,
        required_conclusive: int = 1,
    ):
        if agent not in (ROW, COLUMN):
            raise EquilibriumError("agent must be ROW or COLUMN")
        if required_conclusive < 1:
            raise EquilibriumError("required_conclusive must be >= 1")
        self._game = game
        self._agent = agent
        self._other = COLUMN if agent == ROW else ROW
        self._rng = rng
        num_other = game.action_counts[self._other]
        # Paper: on average O(n) rounds suffice; a generous multiple makes
        # a false "budget exhausted" astronomically unlikely for honest runs.
        self._max_rounds = max_rounds if max_rounds is not None else 64 * num_other + 64
        self._required = required_conclusive

    def verify(
        self, prover: P2Prover, transcript: Transcript | None = None
    ) -> P2Report:
        disclosure = prover.disclose(transcript)
        return self.verify_with_disclosure(disclosure, prover, transcript)

    def verify_with_disclosure(
        self,
        disclosure: P2Disclosure,
        prover: P2Prover,
        transcript: Transcript | None = None,
    ) -> P2Report:
        queries: list[QueryRecord] = []

        failure = self._check_disclosure(disclosure)
        if failure is not None:
            return P2Report(
                accepted=False, conclusive=True, reason=failure,
                rounds=0, conclusive_rounds=0, queries=(),
            )

        # Expected gains of the *other* agent's pure actions against our mix.
        gains = self._game.payoffs_against(self._other, disclosure.own_probabilities)
        lambda_other = disclosure.other_value
        num_other = self._game.action_counts[self._other]
        use_commitments = bool(disclosure.membership_commitments)
        if use_commitments and len(disclosure.membership_commitments) != num_other:
            return P2Report(
                accepted=False, conclusive=True,
                reason="commitment vector has the wrong length",
                rounds=0, conclusive_rounds=0, queries=(),
            )

        conclusive_rounds = 0
        rounds = 0
        while rounds < self._max_rounds and conclusive_rounds < self._required:
            rounds += 1
            j1, j2 = self._pick_indices(num_other)
            answers = []
            for j in (j1, j2):
                if transcript is not None:
                    transcript.record(VERIFIER, "p2.query", {"index": j})
                answer = prover.answer_membership(j, transcript)
                if use_commitments:
                    opening = prover.open_membership(j)
                    commitment = disclosure.membership_commitments[j]
                    if not commitment.verify_opening(opening):
                        return self._reject(
                            f"commitment for index {j} failed to open",
                            rounds, conclusive_rounds, queries,
                        )
                    committed = opening.value
                    if (
                        not isinstance(committed, dict)
                        or committed.get("index") != j
                        or committed.get("member") != answer
                    ):
                        return self._reject(
                            f"answer for index {j} contradicts its commitment",
                            rounds, conclusive_rounds, queries,
                        )
                queries.append(QueryRecord(index=j, answered_in_support=answer))
                answers.append(answer)

            verdict = self._check_round((j1, j2), answers, gains, lambda_other)
            if verdict is not None:
                if verdict == "conclusive":
                    conclusive_rounds += 1
                else:
                    return self._reject(verdict, rounds, conclusive_rounds, queries)
            # None: inconclusive round (both out, no violation); keep going.

        if conclusive_rounds >= self._required:
            report = P2Report(
                accepted=True, conclusive=True, reason="equilibrium play verified",
                rounds=rounds, conclusive_rounds=conclusive_rounds,
                queries=tuple(queries),
            )
        else:
            report = P2Report(
                accepted=False, conclusive=False,
                reason="query budget exhausted before a conclusive round",
                rounds=rounds, conclusive_rounds=conclusive_rounds,
                queries=tuple(queries),
            )
        if transcript is not None:
            transcript.record(
                VERIFIER,
                "p2.verdict",
                {"agent": self._agent, "accepted": report.accepted,
                 "rounds": rounds},
            )
        return report

    # ------------------------------------------------------------------

    def _check_disclosure(self, disclosure: P2Disclosure) -> str | None:
        probs = disclosure.own_probabilities
        num_own = self._game.action_counts[self._agent]
        if len(probs) != num_own:
            return "own probability vector has the wrong length"
        if any(p < 0 or p > 1 for p in probs):
            return "own probabilities leave [0, 1]"
        if sum(probs, start=_ZERO) != 1:
            return "own probabilities do not sum to 1"
        support = tuple(i for i, p in enumerate(probs) if p != 0)
        if support != tuple(sorted(disclosure.own_support)):
            return "own support does not match own probabilities"
        return None

    def _pick_indices(self, num_other: int) -> tuple[int, int]:
        if num_other >= 2:
            j1, j2 = self._rng.sample(range(num_other), 2)
        else:
            j1 = j2 = 0
        return j1, j2

    def _check_round(
        self,
        indices: tuple[int, int],
        answers: list[bool],
        gains: tuple[Fraction, ...],
        lambda_other: Fraction,
    ) -> str | None:
        """Returns "conclusive", an error string, or None (inconclusive)."""
        (j1, j2), (in1, in2) = indices, answers
        if in1 and in2:
            if gains[j1] != lambda_other or gains[j2] != lambda_other:
                return (
                    f"in-support gains λ({j1})={gains[j1]}, λ({j2})={gains[j2]} "
                    f"differ from λ={lambda_other}"
                )
            return "conclusive"
        if in1 or in2:
            j_in, j_out = (j1, j2) if in1 else (j2, j1)
            if gains[j_in] != lambda_other:
                return f"in-support gain λ({j_in})={gains[j_in]} != λ={lambda_other}"
            if gains[j_out] > lambda_other:
                return (
                    f"out-of-support gain λ({j_out})={gains[j_out]} exceeds "
                    f"λ={lambda_other}"
                )
            return "conclusive"
        # Both out: inconclusive, but an out-index beating λ is a violation.
        for j in (j1, j2):
            if gains[j] > lambda_other:
                return (
                    f"index {j} declared out of support but earns "
                    f"{gains[j]} > λ={lambda_other}"
                )
        return None

    def _reject(
        self,
        reason: str,
        rounds: int,
        conclusive_rounds: int,
        queries: list[QueryRecord],
    ) -> P2Report:
        return P2Report(
            accepted=False, conclusive=True, reason=reason,
            rounds=rounds, conclusive_rounds=conclusive_rounds,
            queries=tuple(queries),
        )


def run_p2_exchange(
    game: BimatrixGame,
    equilibrium: MixedProfile,
    rng: random.Random,
    use_commitments: bool = False,
    required_conclusive: int = 1,
    transcript: Transcript | None = None,
) -> tuple[P2Report, P2Report]:
    """Full P2 session: each agent privately verifies the *other*'s side.

    The row agent's checks establish that the (hidden) column support is
    a best reply to x; the column agent's checks establish the mirror
    claim — jointly, Nash.
    """
    if transcript is None:
        transcript = Transcript(protocol="P2")
    reports = []
    for agent in (ROW, COLUMN):
        prover = P2Prover(
            game, equilibrium, agent, use_commitments=use_commitments, rng=rng
        )
        verifier = P2Verifier(
            game, agent, rng=rng, required_conclusive=required_conclusive
        )
        reports.append(verifier.verify(prover, transcript))
    return reports[0], reports[1]
