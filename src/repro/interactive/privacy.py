"""Privacy accounting for the interactive proofs (Remarks 2 and 3).

Remark 2: "The interactive proof P2 does not reveal the actual
equilibrium to either agent.  Namely, the row agent ... cannot in general
compute the Support (and hence the probability values) of the column
agent if the row agent knows λ1, λ2 and its own Support and
probabilities."  The paper demonstrates this on the Fig. 5 game, where
every column mix (qC, qD) with qD <= 1/2 is consistent with the row
agent's view.

This module formalizes "the view" and measures it:

* :class:`P2View` — everything one agent observes in a P2 session;
* :func:`consistent_other_mixes` — which candidate opponent mixes are
  indistinguishable given the view (>= 2 of them ⇒ the equilibrium is
  not revealed);
* :func:`fig5_row_view` / the continuum check — the paper's Remark 2
  example, executable;
* :func:`membership_bits_learned` — the leakage ledger: P1 reveals all
  n + m support bits, P2 only the queried ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.fractions_util import fraction_vector
from repro.games.bimatrix import COLUMN, ROW, BimatrixGame
from repro.games.profiles import MixedProfile
from repro.equilibria.mixed import is_mixed_nash
from repro.interactive.p2 import P2Disclosure, P2Report


@dataclass(frozen=True)
class P2View:
    """One agent's complete view of a P2 session.

    ``membership_answers`` maps queried opponent-action indices to the
    answers received; nothing else about the opponent was communicated.
    """

    agent: int
    own_support: tuple[int, ...]
    own_probabilities: tuple[Fraction, ...]
    own_value: Fraction
    other_value: Fraction
    membership_answers: dict[int, bool] = field(default_factory=dict)


def view_from_session(
    agent: int, disclosure: P2Disclosure, report: P2Report
) -> P2View:
    """Assemble the agent's view from its disclosure and query log."""
    answers: dict[int, bool] = {}
    for record in report.queries:
        answers[record.index] = record.answered_in_support
    return P2View(
        agent=agent,
        own_support=disclosure.own_support,
        own_probabilities=disclosure.own_probabilities,
        own_value=disclosure.own_value,
        other_value=disclosure.other_value,
        membership_answers=answers,
    )


def consistent_other_mixes(
    game: BimatrixGame,
    view: P2View,
    candidates: Sequence[Sequence],
) -> tuple[tuple[Fraction, ...], ...]:
    """Filter opponent mixes indistinguishable from the view.

    A candidate mix q is *consistent* when (our mix, q) is an exact Nash
    equilibrium whose two values match (λ_own, λ_other) and whose support
    agrees with every membership answer we received.  If two or more
    candidates are consistent the view provably does not determine the
    opponent's play — Remark 2's claim.
    """
    own = fraction_vector(view.own_probabilities)
    consistent = []
    for candidate in candidates:
        q = fraction_vector(candidate)
        if view.agent == ROW:
            profile = MixedProfile((own, q))
            own_player, other_player = ROW, COLUMN
        else:
            profile = MixedProfile((q, own))
            own_player, other_player = COLUMN, ROW
        if not is_mixed_nash(game, profile):
            continue
        if game.expected_payoff(own_player, profile) != view.own_value:
            continue
        if game.expected_payoff(other_player, profile) != view.other_value:
            continue
        support = tuple(j for j, p in enumerate(q) if p != 0)
        if any(
            (index in support) != answer
            for index, answer in view.membership_answers.items()
        ):
            continue
        consistent.append(q)
    return tuple(consistent)


def membership_bits_learned(view: P2View) -> int:
    """How many opponent support bits the agent learned (P2's leakage)."""
    return len(view.membership_answers)


def p1_bits_revealed(num_rows: int, num_columns: int) -> int:
    """P1's leakage for comparison: the full n + m support bits."""
    return num_rows + num_columns


def fig5_row_view() -> tuple[BimatrixGame, P2View]:
    """The Remark 2 example: the row agent's view in the Fig. 5 game.

    "Assume that the prover sends to the row agent its Support S1 = {A},
    its probabilities pA = 1, pB = 0, its payoff λ1 = 1, and the payoff
    of the column player λ2 = 1."
    """
    game = BimatrixGame.fig5_example()
    view = P2View(
        agent=ROW,
        own_support=(0,),
        own_probabilities=(Fraction(1), Fraction(0)),
        own_value=Fraction(1),
        other_value=Fraction(1),
        membership_answers={},
    )
    return game, view


def fig5_consistent_column_mixes(samples: int = 11) -> tuple[tuple[Fraction, ...], ...]:
    """The consistent column mixes for the Fig. 5 view.

    The paper: "any probabilities qC, qD of the column agent such that
    qC + qD = 1, qD <= 1/2 correspond to Nash equilibrium probabilities
    with λ2 = 1."  We sample ``samples`` candidates across [0, 1] and
    return those consistent with the view — expected: exactly the ones
    with qD <= 1/2.
    """
    game, view = fig5_row_view()
    candidates = [
        (1 - Fraction(i, samples - 1), Fraction(i, samples - 1))
        for i in range(samples)
    ]
    return consistent_other_mixes(game, view, candidates)
