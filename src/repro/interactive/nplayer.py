"""Remark 1: generalizing the support-based proofs to n agents.

"We can generalize the scheme of P1 and P2 to n agents.  The prover
provides the support sets S1, ..., Sn to all.  The verifier of each agent
then solves the corresponding polynomial system to find the Nash
equilibrium probabilities."

For n > 2 the indifference conditions form a *polynomial* (multilinear)
system, and solving it is not a polynomial-time operation in general.  We
therefore implement the checkable reading of the remark, consistent with
the paper's overall philosophy (verify a provided solution instead of
computing one): the prover announces supports *and* its solution of the
polynomial system; each verifier re-checks, exactly, that the claimed
probabilities solve it — every supported action of every agent earns the
common supported value and no unsupported action earns more.  This
substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.fractions_util import fraction_vector
from repro.games.base import Game
from repro.games.profiles import MixedProfile, ProfileError
from repro.equilibria.best_reply import mixed_action_payoffs
from repro.equilibria.mixed import lattice_action_values
from repro.interactive.transcripts import PROVER, Transcript, support_bitvector


@dataclass(frozen=True)
class NPlayerAnnouncement:
    """Supports for every agent plus the prover's claimed probabilities."""

    supports: tuple[tuple[int, ...], ...]
    probabilities: tuple[tuple[Fraction, ...], ...]


@dataclass(frozen=True)
class NPlayerReport:
    """Outcome of the n-player support verification for one agent."""

    accepted: bool
    reason: str
    values: tuple[Fraction, ...]


def announce_nplayer(
    game: Game, equilibrium: MixedProfile, transcript: Transcript | None = None
) -> NPlayerAnnouncement:
    """The prover's side: supports (as bit-vectors) and probabilities."""
    supports = equilibrium.supports()
    probabilities = equilibrium.distributions
    if transcript is not None:
        bitvector = "".join(
            support_bitvector(support, game.num_actions(i))
            for i, support in enumerate(supports)
        )
        transcript.record(
            PROVER,
            "pn.supports",
            {
                "support_bitvector": bitvector,
                "probabilities": [list(p) for p in probabilities],
            },
        )
    return NPlayerAnnouncement(supports=supports, probabilities=probabilities)


def verify_nplayer(game: Game, announcement: NPlayerAnnouncement) -> NPlayerReport:
    """Exact check that the announcement describes a Nash equilibrium.

    For every agent: the probabilities form a distribution supported
    exactly on the announced support, all supported actions attain the
    agent's maximal expected payoff, and that common value is returned.
    """
    zeros = tuple(Fraction(0) for _ in range(game.num_players))
    if len(announcement.supports) != game.num_players:
        return NPlayerReport(False, "wrong number of supports", zeros)
    if len(announcement.probabilities) != game.num_players:
        return NPlayerReport(False, "wrong number of probability vectors", zeros)

    try:
        mixed = MixedProfile(
            tuple(fraction_vector(p) for p in announcement.probabilities)
        )
    except ProfileError as exc:
        return NPlayerReport(False, f"malformed probabilities: {exc}", zeros)

    for player in range(game.num_players):
        if len(mixed.distribution(player)) != game.num_actions(player):
            return NPlayerReport(
                False, f"agent {player} probability vector has wrong length", zeros
            )
        if mixed.support(player) != tuple(sorted(announcement.supports[player])):
            return NPlayerReport(
                False,
                f"agent {player} probabilities are not supported on the announced set",
                zeros,
            )

    # Tabular games check on the integer lattice (pure int comparisons);
    # the carried denominators reconstruct the exact Fraction payoffs at
    # the boundary, so reports — values and rejection reasons — are
    # bit-identical to the Fraction oracle's.
    lattice = lattice_action_values(game, mixed)
    values = []
    for player in range(game.num_players):
        if lattice is not None:
            ints, denominator = lattice[player]
            best_int = max(ints)
            payoffs = None
            best = Fraction(best_int, denominator)
        else:
            payoffs = mixed_action_payoffs(game, player, mixed)
            best = max(payoffs)
        for action in mixed.support(player):
            if lattice is not None:
                if ints[action] == best_int:
                    continue
                earned = Fraction(ints[action], denominator)
            else:
                if payoffs[action] == best:
                    continue
                earned = payoffs[action]
            return NPlayerReport(
                False,
                f"agent {player} supported action {action} earns "
                f"{earned} < best {best}",
                zeros,
            )
        values.append(best)
    return NPlayerReport(True, "n-player equilibrium verified", tuple(values))
