"""Dishonest provers.

"We consider game inventors that may have conflicts of interest with the
agents and attempt to misadvise them."  These adversaries instantiate the
misadvice strategies the protocols must catch:

* :class:`WrongValueProver` — reports a shifted λ for the other agent;
  any conclusive P2 round rejects it.
* :class:`NonEquilibriumProver` — discloses a non-equilibrium profile as
  if it were one; the derived gains betray it on conclusive rounds.
* :class:`LyingMembershipProver` — flips membership answers with some
  probability; detectable whenever a flipped answer creates an
  inconsistency, and *bound* to its lies under commitment mode.
* :class:`AdaptiveMembershipProver` — the motivating case for
  commitments: answers whatever keeps the verifier happy (claims "out"
  for every query), which without commitments can stall verification
  indefinitely but with commitments is caught on the first in-support
  query.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.interactive.p2 import P2Disclosure, P2Prover
from repro.interactive.transcripts import PROVER, Transcript


class WrongValueProver(P2Prover):
    """Honest about everything except the other agent's value λ."""

    def __init__(self, game, equilibrium, agent, offset=Fraction(1), **kwargs):
        super().__init__(game, equilibrium, agent, **kwargs)
        self._offset = offset

    def disclose(self, transcript: Transcript | None = None) -> P2Disclosure:
        honest = super().disclose(transcript)
        return P2Disclosure(
            own_support=honest.own_support,
            own_probabilities=honest.own_probabilities,
            own_value=honest.own_value,
            other_value=honest.other_value + self._offset,
            membership_commitments=honest.membership_commitments,
        )


class NonEquilibriumProver(P2Prover):
    """Discloses an arbitrary (non-equilibrium) profile with fabricated λs.

    The fabricated λ for the other agent is taken as the *actual* expected
    payoff at the fake profile, so the lie is as consistent as a lie can
    be — detection must come from the equilibrium conditions themselves.
    """

    def __init__(self, game: BimatrixGame, fake_profile: MixedProfile, agent: int,
                 **kwargs):
        super().__init__(game, fake_profile, agent, **kwargs)


class LyingMembershipProver(P2Prover):
    """Flips each membership answer independently with probability ``flip_p``."""

    def __init__(self, game, equilibrium, agent, flip_p: float = 1.0,
                 lie_rng: random.Random | None = None, **kwargs):
        super().__init__(game, equilibrium, agent, **kwargs)
        self._flip_p = flip_p
        self._lie_rng = lie_rng or random.Random(0)
        self.lies_told = 0

    def answer_membership(self, index: int, transcript: Transcript | None = None) -> bool:
        answer = self.true_membership(index)
        if self._lie_rng.random() < self._flip_p:
            answer = not answer
            self.lies_told += 1
        if transcript is not None:
            transcript.record(
                PROVER, "p2.answer", {"index": index, "in_support": answer}
            )
        return answer


class AdaptiveMembershipProver(P2Prover):
    """Always answers "out of support" — the stalling adversary.

    Without commitments this prover is never *caught* unless an
    out-declared index beats λ; it simply starves the verifier of
    conclusive rounds (the budget-exhaustion outcome).  With commitments
    its pre-committed bits contradict the answers on the first in-support
    query, and it is rejected outright.
    """

    def answer_membership(self, index: int, transcript: Transcript | None = None) -> bool:
        if transcript is not None:
            transcript.record(
                PROVER, "p2.answer", {"index": index, "in_support": False}
            )
        return False
