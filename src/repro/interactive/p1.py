"""The interactive proof P1 (Fig. 3).

Protocol:

* **Prover (inventor)**: "Provide each agent the agents' supports, i.e.,
  strategy profiles played with non-zero probabilities" — sent as the
  Lemma 1 bit-vectors, so the communication is exactly n + m bits.
* **Verifier of the row agent**: given the column support
  S2 = {j1..jk} and its own support S1, solve the linear system (1)

      λ1 = Σ_t y_t A(i, t)   for each i in S1,     Σ_t y_t = 1,

  then check 0 <= y <= 1 and, for each row i not in S1, that the
  expected gain is below λ1.

Lemma 1: verifier time is one linear solve (LP time in the degenerate
case), communication O(n + m) bits.  The column agent runs the mirror
image; *joint* soundness (the profile is a Nash equilibrium) needs both
sides, which :func:`run_p1_exchange` performs.

The system (1) is square when |S1| = |S2| and generically nonsingular;
for degenerate games the verifier falls back to exact LP feasibility over
the same conditions — matching Lemma 1's "LP(n, m)" bound.  Both legs
run fraction-free: the square solve on the integer Bareiss kernel
(:mod:`repro.linalg.int_exact`) and the LP fallback on the integer
simplex (:mod:`repro.linalg.int_lp`), each bit-identical to its
Fraction reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import EquilibriumError, LinearAlgebraError, TranscriptError
from repro.games.bimatrix import COLUMN, ROW, BimatrixGame
from repro.games.profiles import MixedProfile
from repro.linalg.int_exact import solve_square
from repro.equilibria.support_enumeration import solve_one_side
from repro.interactive.transcripts import (
    PROVER,
    Transcript,
    VERIFIER,
    support_bitvector,
    support_from_bitvector,
)

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class P1Announcement:
    """What the P1 prover sends: both supports, as bit-vectors."""

    row_support: tuple[int, ...]
    column_support: tuple[int, ...]


@dataclass(frozen=True)
class P1Report:
    """Outcome of one agent's P1 verification.

    ``other_mix`` is the opponent's equilibrium mix the verifier derived
    from its *own* payoff matrix (P1 reveals supports, so this derivation
    is possible — the privacy gap P2 closes).  ``value`` is the agent's
    equilibrium payoff λ.  ``linear_solves`` and ``lp_fallbacks`` witness
    the Lemma 1 cost accounting.
    """

    accepted: bool
    reason: str
    other_mix: tuple[Fraction, ...] | None
    value: Fraction | None
    linear_solves: int
    lp_fallbacks: int


class P1Prover:
    """The inventor's side: announces the equilibrium supports."""

    def __init__(self, game: BimatrixGame, equilibrium: MixedProfile):
        game._unpack(equilibrium)  # shape validation
        self._game = game
        self._equilibrium = equilibrium

    @property
    def equilibrium(self) -> MixedProfile:
        return self._equilibrium

    def announce(self, transcript: Transcript | None = None) -> P1Announcement:
        """Send both supports, charged n + m bits on the transcript."""
        row_support = self._equilibrium.support(ROW)
        column_support = self._equilibrium.support(COLUMN)
        if transcript is not None:
            n, m = self._game.action_counts
            transcript.record(
                PROVER,
                "p1.supports",
                {
                    "support_bitvector": support_bitvector(row_support, n)
                    + support_bitvector(column_support, m)
                },
            )
        return P1Announcement(row_support=row_support, column_support=column_support)


class P1Verifier:
    """One agent's verifier.  ``agent`` is ROW or COLUMN.

    The verifier uses only the agent's own payoff matrix: the row agent
    derives the *column* mix y from A (the mix that makes its supported
    rows indifferent), per the "second Nash theorem" reasoning of Lemma 1.
    """

    def __init__(self, game: BimatrixGame, agent: int):
        if agent not in (ROW, COLUMN):
            raise EquilibriumError("agent must be ROW or COLUMN")
        self._game = game
        self._agent = agent
        self.linear_solves = 0
        self.lp_fallbacks = 0

    def verify(
        self,
        announcement: P1Announcement,
        transcript: Transcript | None = None,
    ) -> P1Report:
        """Run the Fig. 3 verification for this agent."""
        self.linear_solves = 0
        self.lp_fallbacks = 0
        if self._agent == ROW:
            own_support = announcement.row_support
            other_support = announcement.column_support
            payoff_rows = self._game.row_matrix
            num_own, num_other = self._game.action_counts
        else:
            own_support = announcement.column_support
            other_support = announcement.row_support
            # The column agent's payoffs, viewed with its own actions as rows.
            b = self._game.column_matrix
            payoff_rows = tuple(
                tuple(b[i][j] for i in range(self._game.num_rows))
                for j in range(self._game.num_columns)
            )
            num_other, num_own = self._game.action_counts

        report = self._verify_side(payoff_rows, own_support, other_support, num_own, num_other)
        if transcript is not None:
            transcript.record(
                VERIFIER,
                "p1.verdict",
                {"agent": self._agent, "accepted": report.accepted},
            )
        return report

    # ------------------------------------------------------------------

    def _verify_side(
        self,
        payoff_rows: Sequence[Sequence[Fraction]],
        own_support: tuple[int, ...],
        other_support: tuple[int, ...],
        num_own: int,
        num_other: int,
    ) -> P1Report:
        if not own_support or not other_support:
            return self._reject("a support set is empty")
        if any(not 0 <= i < num_own for i in own_support):
            return self._reject("own support indices out of range")
        if any(not 0 <= j < num_other for j in other_support):
            return self._reject("other support indices out of range")

        y = self._solve_system(payoff_rows, own_support, other_support, num_other)
        if y is None:
            return self._reject(
                "the support system (1) has no valid probability solution"
            )

        # Probability constraints: 0 <= y_t <= 1, summing to one.
        if any(prob < 0 or prob > 1 for prob in y):
            return self._reject("derived probabilities leave [0, 1]")
        if sum(y, start=_ZERO) != 1:
            return self._reject("derived probabilities do not sum to 1")

        gains = [
            sum((y[j] * payoff_rows[i][j] for j in range(num_other)), start=_ZERO)
            for i in range(num_own)
        ]
        value = gains[own_support[0]]
        for i in own_support:
            if gains[i] != value:
                return self._reject(
                    f"supported action {i} is not indifferent (λ broken)"
                )
        for i in range(num_own):
            if i in own_support:
                continue
            if gains[i] > value:
                return self._reject(
                    f"off-support action {i} earns {gains[i]} > λ = {value}"
                )
        return P1Report(
            accepted=True,
            reason="supports verified",
            other_mix=tuple(y),
            value=value,
            linear_solves=self.linear_solves,
            lp_fallbacks=self.lp_fallbacks,
        )

    def _solve_system(
        self,
        payoff_rows: Sequence[Sequence[Fraction]],
        own_support: tuple[int, ...],
        other_support: tuple[int, ...],
        num_other: int,
    ) -> tuple[Fraction, ...] | None:
        """Solve system (1); exact square solve first, LP fallback after."""
        k = len(other_support)
        if len(own_support) == k:
            # Square system: unknowns y_{j in S2} and λ.
            matrix = []
            rhs = []
            for i in own_support:
                matrix.append([payoff_rows[i][j] for j in other_support] + [-_ONE])
                rhs.append(_ZERO)
            matrix.append([_ONE] * k + [_ZERO])
            rhs.append(_ONE)
            self.linear_solves += 1
            try:
                solution = solve_square(matrix, rhs)
            except LinearAlgebraError:
                solution = None
            if solution is not None:
                y = [_ZERO] * num_other
                for idx, j in enumerate(other_support):
                    y[j] = solution[idx]
                return tuple(y)
        # Degenerate or non-square: exact LP feasibility (Lemma 1's LP bound).
        self.lp_fallbacks += 1
        result = solve_one_side(payoff_rows, own_support, other_support, num_other)
        if result is None:
            return None
        return result[0]

    def _reject(self, reason: str) -> P1Report:
        return P1Report(
            accepted=False,
            reason=reason,
            other_mix=None,
            value=None,
            linear_solves=self.linear_solves,
            lp_fallbacks=self.lp_fallbacks,
        )


def run_p1_exchange(
    game: BimatrixGame,
    equilibrium: MixedProfile,
    transcript: Transcript | None = None,
) -> tuple[P1Report, P1Report]:
    """Full P1 session: prover announces once, both agents verify.

    Accepting on both sides establishes that *some* equilibrium with the
    announced supports exists and each agent's support is a best reply —
    the joint soundness Lemma 1 packages.
    """
    if transcript is None:
        transcript = Transcript(protocol="P1")
    prover = P1Prover(game, equilibrium)
    announcement = prover.announce(transcript)
    row_report = P1Verifier(game, ROW).verify(announcement, transcript)
    column_report = P1Verifier(game, COLUMN).verify(announcement, transcript)
    return row_report, column_report


def decode_announcement(vector: str, num_rows: int, num_columns: int) -> P1Announcement:
    """Rebuild a :class:`P1Announcement` from the n+m bit-vector."""
    if len(vector) != num_rows + num_columns:
        raise TranscriptError(
            f"bit-vector length {len(vector)} != n+m = {num_rows + num_columns}"
        )
    row_support = support_from_bitvector(vector[:num_rows])
    column_support = tuple(
        j for j in support_from_bitvector(vector[num_rows:])
    )
    return P1Announcement(row_support=row_support, column_support=column_support)
