"""Interactive proofs P1 (support-revealing) and P2 (private), with
transcripts, adversaries and privacy accounting (Sect. 4)."""

from repro.interactive.adversaries import (
    AdaptiveMembershipProver,
    LyingMembershipProver,
    NonEquilibriumProver,
    WrongValueProver,
)
from repro.interactive.nplayer import (
    NPlayerAnnouncement,
    NPlayerReport,
    announce_nplayer,
    verify_nplayer,
)
from repro.interactive.p1 import (
    P1Announcement,
    P1Prover,
    P1Report,
    P1Verifier,
    decode_announcement,
    run_p1_exchange,
)
from repro.interactive.p2 import (
    P2Disclosure,
    P2Prover,
    P2Report,
    P2Verifier,
    QueryRecord,
    run_p2_exchange,
)
from repro.interactive.privacy import (
    P2View,
    consistent_other_mixes,
    fig5_consistent_column_mixes,
    fig5_row_view,
    membership_bits_learned,
    p1_bits_revealed,
    view_from_session,
)
from repro.interactive.transcripts import (
    PROVER,
    Transcript,
    TranscriptMessage,
    VERIFIER,
    payload_bits,
    support_bitvector,
    support_from_bitvector,
)

__all__ = [
    "P1Announcement",
    "P1Prover",
    "P1Report",
    "P1Verifier",
    "decode_announcement",
    "run_p1_exchange",
    "P2Disclosure",
    "P2Prover",
    "P2Report",
    "P2Verifier",
    "QueryRecord",
    "run_p2_exchange",
    "WrongValueProver",
    "NonEquilibriumProver",
    "LyingMembershipProver",
    "AdaptiveMembershipProver",
    "NPlayerAnnouncement",
    "NPlayerReport",
    "announce_nplayer",
    "verify_nplayer",
    "P2View",
    "consistent_other_mixes",
    "fig5_consistent_column_mixes",
    "fig5_row_view",
    "membership_bits_learned",
    "p1_bits_revealed",
    "view_from_session",
    "Transcript",
    "TranscriptMessage",
    "PROVER",
    "VERIFIER",
    "payload_bits",
    "support_bitvector",
    "support_from_bitvector",
]
