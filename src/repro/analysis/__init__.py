"""Experiment statistics and reporting helpers."""

from repro.analysis.reporting import PaperComparison, TextTable
from repro.analysis.stats import SampleSummary, proportion_ci, summarize

__all__ = [
    "PaperComparison",
    "TextTable",
    "SampleSummary",
    "proportion_ci",
    "summarize",
]
