"""Experiment statistics and reporting helpers."""

from repro.analysis.reporting import PaperComparison, TextTable
from repro.analysis.stats import (
    SampleSummary,
    latency_summary,
    percentile,
    proportion_ci,
    summarize,
)

__all__ = [
    "PaperComparison",
    "TextTable",
    "SampleSummary",
    "latency_summary",
    "percentile",
    "proportion_ci",
    "summarize",
]
