"""Small statistics helpers for experiment outputs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class SampleSummary:
    """Mean, standard deviation and a normal-approximation 95% CI."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float


def summarize(values: Sequence[float]) -> SampleSummary:
    """Summary statistics of a sample (95% CI via the normal approximation)."""
    if not values:
        raise ReproError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    half_width = 1.96 * std / math.sqrt(n) if n > 1 else 0.0
    return SampleSummary(
        count=n,
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (inclusive), ``q`` in [0, 100].

    The estimator the load telemetry standardizes on: deterministic,
    needs no interpolation, and for small drains returns an actually
    observed latency rather than a synthetic midpoint.  The input need
    not be sorted.
    """
    if not values:
        raise ReproError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ReproError("percentile rank must be within [0, 100]")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def latency_summary(values: Sequence[float]) -> dict[str, float]:
    """The p50/p95/p99/max summary every latency consumer shares.

    Used by the service's ``service.queue.drained`` audit records and by
    the open-loop load harness, so the two report the same estimator on
    the same keys.  An empty sample summarizes to zeros (a drain that
    resolved nothing still emits a record).
    """
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
        "max": max(values),
    }


def proportion_ci(successes: int, trials: int) -> tuple[float, float]:
    """Wilson 95% interval for a binomial proportion."""
    if trials <= 0:
        raise ReproError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ReproError("successes out of range")
    z = 1.96
    p_hat = successes / trials
    denom = 1 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)
