"""Small statistics helpers for experiment outputs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class SampleSummary:
    """Mean, standard deviation and a normal-approximation 95% CI."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float


def summarize(values: Sequence[float]) -> SampleSummary:
    """Summary statistics of a sample (95% CI via the normal approximation)."""
    if not values:
        raise ReproError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    half_width = 1.96 * std / math.sqrt(n) if n > 1 else 0.0
    return SampleSummary(
        count=n,
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def proportion_ci(successes: int, trials: int) -> tuple[float, float]:
    """Wilson 95% interval for a binomial proportion."""
    if trials <= 0:
        raise ReproError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ReproError("successes out of range")
    z = 1.96
    p_hat = successes / trials
    denom = 1 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)
