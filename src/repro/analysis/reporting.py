"""Fixed-width text tables for the benchmark harness.

Every bench prints the rows/series the paper reports, in a
"paper expectation vs measured" format recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ReproError


class TextTable:
    """A minimal fixed-width table renderer."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ReproError("a table needs at least one column")
        self._columns = [str(c) for c in columns]
        self._rows: list[list[str]] = []
        self.title = title

    def add_row(self, *cells) -> None:
        if len(cells) != len(self._columns):
            raise ReproError(
                f"row has {len(cells)} cells for {len(self._columns)} columns"
            )
        self._rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self._columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self._columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@dataclass
class PaperComparison:
    """Accumulates paper-vs-measured rows for one experiment."""

    experiment: str
    rows: list[tuple[str, str, str, str]] = field(default_factory=list)

    def add(self, quantity: str, paper: str, measured, verdict: bool | str) -> None:
        if isinstance(verdict, bool):
            verdict = "MATCH" if verdict else "MISMATCH"
        self.rows.append((quantity, paper, _format_cell(measured), verdict))

    def render(self) -> str:
        table = TextTable(
            ["quantity", "paper", "measured", "verdict"],
            title=f"== {self.experiment} ==",
        )
        for row in self.rows:
            table.add_row(*row)
        return table.render()

    def all_match(self) -> bool:
        return all(r[3] == "MATCH" for r in self.rows)
