"""Futures for the consultation service.

A :class:`ConsultationFuture` is the caller's handle on one admitted
submission: it resolves to a
:class:`~repro.core.session.SessionOutcome` (or raises the submission's
failure) and carries the service-level telemetry — queue depth at
admission and end-to-end latency — that the audit log records per
completion.

The future is backed by a :class:`concurrent.futures.Future`, so it
bridges cleanly into ``asyncio`` (``asyncio.wrap_future`` on
:attr:`inner`), thread pools and plain blocking waits.  Calling
:meth:`result` on an unresolved future *pumps the service* — the
admission queue is drained synchronously in the calling thread — so a
submit-then-result sequence never deadlocks even with no background
worker anywhere.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Any, Callable


class ConsultationFuture:
    """One pending consultation: resolves to its session outcome."""

    def __init__(self, submission_id: int, agent: str, game_id: str,
                 service, queue_depth: int,
                 deadline_ms: float | None = None):
        self.submission_id = submission_id
        self.agent = agent
        self.game_id = game_id
        #: Pending submissions ahead of this one at admission time.
        self.queue_depth = queue_depth
        #: The effective wall-clock budget (request's own, or the
        #: service default), for the wire payloads; ``None`` = none.
        #: An expired submission resolves to
        #: :class:`~repro.errors.DeadlineExceeded`.
        self.deadline_ms = deadline_ms
        self._service = service
        self._inner: concurrent.futures.Future = concurrent.futures.Future()
        self._submitted_at = time.perf_counter()
        #: Seconds from admission to resolution; ``None`` until resolved.
        self.latency: float | None = None

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------

    def done(self) -> bool:
        return self._inner.done()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved WITHOUT pumping the service; True if done.

        The passive counterpart of :meth:`result`, for callers that
        know something else is draining — the load harness's drainer
        thread, a server front-end's pump loop.  Unlike :meth:`result`,
        the ``timeout`` here really is a wall-clock bound on the whole
        wait.
        """
        done, __ = concurrent.futures.wait([self._inner], timeout=timeout)
        return bool(done)

    def result(self, timeout: float | None = None):
        """The session outcome, draining the service first if needed.

        Note on ``timeout``: an unresolved future pumps the service
        *synchronously* — the drain (solves and all) is not bounded by
        the timeout, which only limits the wait on the resolved value
        afterwards.  Callers that need a hard wall-clock bound should
        have something else pump the queue (``service.drain()`` /
        ``async_drain()``) and poll :meth:`done`, or wait on
        :attr:`inner` directly.
        """
        if not self._inner.done() and self._service is not None:
            self._service.drain()
        return self._inner.result(timeout)

    def exception(self, timeout: float | None = None):
        """Like :meth:`result` — including the timeout caveat — but
        returns the submission's exception (or None) instead of raising."""
        if not self._inner.done() and self._service is not None:
            self._service.drain()
        return self._inner.exception(timeout)

    def add_done_callback(self, fn: Callable[["ConsultationFuture"], None]) -> None:
        """Call ``fn(self)`` once resolved (immediately if already done).

        The callback runs on whatever thread resolves the future — the
        draining thread, an off-path verifier worker, or (when already
        resolved) the caller itself.  A raising callback is recorded as
        a ``service.callback.failed`` audit warning (or logged, for a
        service-less future): the stdlib future underneath would catch
        and log the exception anyway, but invisibly — the authority's
        accountability story wants misbehaving consumers in the audit
        trail, not buried in the logging module.
        """

        def _isolated(_inner) -> None:
            try:
                fn(self)
            except Exception as exc:
                service = self._service
                if service is not None:
                    service._record_callback_failure(self, exc)
                else:  # pragma: no cover - no audit log to warn into
                    import logging

                    logging.getLogger(__name__).exception(
                        "done-callback for %r raised", self
                    )

        self._inner.add_done_callback(_isolated)

    @property
    def inner(self) -> concurrent.futures.Future:
        """The backing stdlib future (for ``asyncio.wrap_future`` et al.).

        Note that nothing resolves it until the service drains; bridge
        it only when something else is pumping the service.
        """
        return self._inner

    @property
    def latency_ms(self) -> float | None:
        return None if self.latency is None else self.latency * 1000.0

    def peek_outcome(self):
        """The resolved outcome, or ``None`` — never pumps the service.

        Telemetry accessor: the drain loop reads resolved futures'
        outcomes (for e.g. per-drain verify-time aggregates) without
        re-entering :meth:`result`'s drain path and without raising a
        failed submission's exception.
        """
        if (
            self._inner.done()
            and not self._inner.cancelled()  # exception() raises on cancelled
            and self._inner.exception() is None
        ):
            return self._inner.result()
        return None

    # ------------------------------------------------------------------
    # Service side
    # ------------------------------------------------------------------

    def _resolve(self, outcome: Any) -> None:
        if self._inner.done():
            return
        self.latency = time.perf_counter() - self._submitted_at
        self._note_completed()
        self._inner.set_result(outcome)

    def _fail(self, exc: BaseException) -> None:
        if self._inner.done():
            return
        self.latency = time.perf_counter() - self._submitted_at
        self._note_completed()
        self._inner.set_exception(exc)

    def _note_completed(self) -> None:
        # Count the completion at the instant the future resolves, not
        # at the end of the enclosing drain: an HTTP client that gets
        # its advice and immediately asks GET /stats must see itself
        # counted.  Counting *before* set_result keeps the counter
        # ahead of any caller the resolution unblocks.  The service
        # seam is duck-typed (BurstLinkAdviser keeps its own tallies).
        note = getattr(self._service, "_note_completed", None)
        if note is not None:
            note()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return (
            f"ConsultationFuture(#{self.submission_id} {self.agent!r}/"
            f"{self.game_id!r} {state})"
        )
