"""The cross-run solve cache: certified solutions keyed by payoff bytes.

The PPAD-hard step of a consultation is the inventor's equilibrium
search; a production authority answering a stream of queries sees the
same games — and near-misses of them — over and over.  This cache makes
repeats cheap without touching the soundness story:

* **Keys are exact.**  A game is identified by the canonical fingerprint
  of its exact payoff matrices
  (:func:`repro.fractions_util.exact_fingerprint`, via
  ``BimatrixGame.payoff_fingerprint``) — two games share an entry iff
  every payoff is the same rational number.  There is no tolerance
  anywhere in the key, so a cache hit is a *proof-preserving* event: the
  stored solution was certified for bit-identical inputs.

* **Values are certified.**  The cache stores what the solvers
  returned — exact, Lemma-1-gated profiles (and whole enumeration
  sets).  Serving one skips the search phase only; the verification a
  consultation performs downstream is identical either way.

* **Near-repeats warm-start.**  For games that are *not* exact repeats
  the cache keeps per-shape support hints — the winning support pairs
  of recent solves.  A hinted pair is re-decided from scratch on the
  new game's exact arithmetic (one support-restricted exact solve, the
  cross-run analogue of the within-run warm-started bases in
  ``support_enumeration._SideScreener``), so a stale hint can cost
  time, never correctness.

Entries are keyed by ``(fingerprint, method, mode)`` for single
solutions: a hit returns exactly the certified profile this cache
stored for those payoff bytes under that configuration.  With
``use_hints=False`` that is also bit-identical to a fresh cold solve
(the solvers are deterministic given the three key parts); with hints
on, an entry populated through a warm hint may — on any game with
several equilibria, degenerate or not — be a different (equally exact,
equally certified) equilibrium than cold enumeration order would pick.  Enumeration *sets* are keyed
by fingerprint alone — the backend-parity guarantee (sets are
bit-identical across every search mode) makes the mode irrelevant to
the value.

The cache is thread-safe and intended to be shared: one instance can
back several services, inventors and runs (that is the "cross-run" in
the name).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile


def game_fingerprint(game) -> str | None:
    """The canonical exact-payoff fingerprint of ``game``, or ``None``.

    Games expose their own cached ``payoff_fingerprint`` (see
    :attr:`repro.games.bimatrix.BimatrixGame.payoff_fingerprint`, which
    delegates to the single canonicalization helper in
    :mod:`repro.fractions_util`); game kinds that do not are simply not
    cacheable and every lookup for them misses harmlessly.
    """
    return getattr(game, "payoff_fingerprint", None)


@dataclass
class CacheStats:
    """Counters the service reports into the audit log."""

    hits: int = 0
    warm_hits: int = 0
    misses: int = 0
    set_hits: int = 0
    set_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.warm_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Exact-hit fraction of all solution lookups (0.0 when none)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "warm_hits": self.warm_hits,
            "misses": self.misses,
            "set_hits": self.set_hits,
            "set_misses": self.set_misses,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class _Snapshot:
    """Immutable copy of the counters, for delta reporting."""

    hits: int
    warm_hits: int
    misses: int


class SolveCache:
    """Cross-run cache of certified solves, support hints and sets.

    ``max_hints_per_shape`` bounds the per-shape support-hint list
    (most-recently-confirmed first); ``use_hints=False`` disables the
    near-repeat warm path entirely, leaving only exact-fingerprint
    hits — useful when bit-reproducibility of *which* equilibrium a
    degenerate game yields must not depend on cache warmth.

    ``max_entries`` bounds each of the profile and set stores
    (least-recently-used entries are evicted) so an always-on service
    answering a long stream of mostly-distinct games holds steady
    memory; ``None`` removes the bound.  Eviction only ever costs a
    re-solve — an evicted entry's next lookup is an ordinary miss.
    """

    DEFAULT_MAX_ENTRIES = 4096

    def __init__(self, max_hints_per_shape: int = 8, use_hints: bool = True,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES):
        if max_hints_per_shape < 0:
            raise ValueError("max_hints_per_shape must be non-negative")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self._profiles: dict[tuple[str, str, str], MixedProfile] = {}
        self._sets: dict[tuple[str, bool], tuple[MixedProfile, ...]] = {}
        self._hints: dict[tuple[int, int], list] = {}
        self._max_hints = max_hints_per_shape
        self._max_entries = max_entries
        self._use_hints = use_hints
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def _touch(self, store: dict, key) -> None:
        """Mark ``key`` most-recently-used (dicts iterate oldest-first)."""
        store[key] = store.pop(key)

    def _evict(self, store: dict) -> None:
        if self._max_entries is None:
            return
        while len(store) > self._max_entries:
            store.pop(next(iter(store)))

    # ------------------------------------------------------------------
    # Single certified solutions (the inventor's find-one path)
    # ------------------------------------------------------------------

    def lookup_profile(
        self, fingerprint: str, method: str, mode: str
    ) -> MixedProfile | None:
        """The cached certified profile for this exact configuration.

        A miss is *not* counted here — the caller decides whether the
        cold solve that follows was hint-warmed or fully cold and
        reports it via :meth:`note_solved`.
        """
        with self._lock:
            key = (fingerprint, method, mode)
            profile = self._profiles.get(key)
            if profile is not None:
                self.stats.hits += 1
                self._touch(self._profiles, key)
            return profile

    def store_profile(
        self, fingerprint: str, method: str, mode: str, profile: MixedProfile
    ) -> None:
        with self._lock:
            self._profiles[(fingerprint, method, mode)] = profile
            self._evict(self._profiles)

    def note_solved(self, warm: bool) -> None:
        """Record how a non-hit solve resolved (hint-warmed or cold)."""
        with self._lock:
            if warm:
                self.stats.warm_hits += 1
            else:
                self.stats.misses += 1

    # ------------------------------------------------------------------
    # Support hints (the cross-run warm-start seam)
    # ------------------------------------------------------------------

    def support_hints(self, shape: tuple[int, int]) -> tuple:
        """Recently winning ``(row_support, col_support)`` pairs for a shape."""
        if not self._use_hints:
            return ()
        with self._lock:
            return tuple(self._hints.get(tuple(shape), ()))

    def note_hint(self, shape: tuple[int, int], pair) -> None:
        """Promote a freshly confirmed winning support pair to the front."""
        if not self._use_hints or self._max_hints == 0:
            return
        shape = tuple(shape)
        with self._lock:
            hints = self._hints.setdefault(shape, [])
            if pair in hints:
                hints.remove(pair)
            hints.insert(0, pair)
            del hints[self._max_hints:]

    # ------------------------------------------------------------------
    # Certified equilibrium sets (full enumeration results)
    # ------------------------------------------------------------------

    def equilibrium_set(
        self,
        game: BimatrixGame,
        policy=None,
        executor=None,
        equal_size_only: bool = False,
    ) -> tuple[MixedProfile, ...]:
        """All equilibria of ``game``, served from cache on exact repeats.

        Keyed by payoff fingerprint only: every search mode provably
        returns the same (bit-identical, exact) set, so a set computed
        under one policy answers for all of them.  Cold calls delegate
        to :func:`repro.equilibria.support_enumeration.support_enumeration`
        with the given policy/executor and store the certified result.
        """
        from repro.equilibria.support_enumeration import support_enumeration

        fingerprint = game_fingerprint(game)
        key = (fingerprint, equal_size_only)
        if fingerprint is not None:
            with self._lock:
                cached = self._sets.get(key)
                if cached is not None:
                    self.stats.set_hits += 1
                    self._touch(self._sets, key)
                    return cached
        result = support_enumeration(
            game, equal_size_only=equal_size_only, policy=policy,
            executor=executor,
        )
        with self._lock:
            self.stats.set_misses += 1
            if fingerprint is not None:
                self._sets[key] = result
                self._evict(self._sets)
        return result

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles) + len(self._sets)

    def snapshot(self) -> _Snapshot:
        """Counter snapshot for delta reporting (see the service drain)."""
        with self._lock:
            return _Snapshot(
                hits=self.stats.hits,
                warm_hits=self.stats.warm_hits,
                misses=self.stats.misses,
            )

    def delta_since(self, snapshot: _Snapshot) -> dict:
        """Hit/warm/miss counts accumulated since ``snapshot``."""
        with self._lock:
            hits = self.stats.hits - snapshot.hits
            warm = self.stats.warm_hits - snapshot.warm_hits
            misses = self.stats.misses - snapshot.misses
        lookups = hits + warm + misses
        return {
            "cache_hits": hits,
            "cache_warm_hits": warm,
            "cache_misses": misses,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()
            self._sets.clear()
            self._hints.clear()
            self.stats = CacheStats()
