"""The cross-run solve cache: certified solutions keyed by payoff bytes.

The PPAD-hard step of a consultation is the inventor's equilibrium
search; a production authority answering a stream of queries sees the
same games — and near-misses of them — over and over.  This cache makes
repeats cheap without touching the soundness story:

* **Keys are exact.**  A game is identified by the canonical fingerprint
  of its exact payoff matrices
  (:func:`repro.fractions_util.exact_fingerprint`, via
  ``BimatrixGame.payoff_fingerprint``) — two games share an entry iff
  every payoff is the same rational number.  There is no tolerance
  anywhere in the key, so a cache hit is a *proof-preserving* event: the
  stored solution was certified for bit-identical inputs.

* **Values are certified.**  The cache stores what the solvers
  returned — exact, Lemma-1-gated profiles (and whole enumeration
  sets).  Serving one skips the search phase only; the verification a
  consultation performs downstream is identical either way.

* **Near-repeats warm-start.**  For games that are *not* exact repeats
  the cache keeps per-shape support hints — the winning support pairs
  of recent solves.  A hinted pair is re-decided from scratch on the
  new game's exact arithmetic (one support-restricted exact solve, the
  cross-run analogue of the within-run warm-started bases in
  ``support_enumeration._SideScreener``), so a stale hint can cost
  time, never correctness.

* **Warm state survives restarts.**  With ``path=`` set the cache
  saves its contents through :mod:`repro.service.persistence` — exact
  ``num/den`` strings, schema version, whole-file digest, atomic
  replace — and warm-loads them on construction.  Loaded entries are
  *pending*: each one is re-certified through the Lemma-1 lattice gate
  against the caller's actual game before it is first served, so a
  forged file can cost cold solves, never produce unverified advice;
  a corrupted, truncated or version-mismatched file is rejected
  outright and the cache starts empty (a clean miss), with the
  rejection recorded for the service's audit log.

Entries are keyed by ``(fingerprint, method, mode)`` for single
solutions: a hit returns exactly the certified profile this cache
stored for those payoff bytes under that configuration.  With
``use_hints=False`` that is also bit-identical to a fresh cold solve
(the solvers are deterministic given the three key parts); with hints
on, an entry populated through a warm hint may — on any game with
several equilibria, degenerate or not — be a different (equally exact,
equally certified) equilibrium than cold enumeration order would pick.  Enumeration *sets* are keyed
by fingerprint alone — the backend-parity guarantee (sets are
bit-identical across every search mode) makes the mode irrelevant to
the value.

The cache is thread-safe and intended to be shared: one instance can
back several services, inventors and runs (that is the "cross-run" in
the name).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.errors import PersistenceError
from repro.games.bimatrix import BimatrixGame
from repro.games.profiles import MixedProfile
from repro.service.persistence import (
    CacheLoadReport,
    CacheState,
    read_cache_file,
    write_cache_file,
)


def game_fingerprint(game) -> str | None:
    """The canonical exact-payoff fingerprint of ``game``, or ``None``.

    Games expose their own cached ``payoff_fingerprint`` (see
    :attr:`repro.games.bimatrix.BimatrixGame.payoff_fingerprint`, which
    delegates to the single canonicalization helper in
    :mod:`repro.fractions_util`); game kinds that do not are simply not
    cacheable and every lookup for them misses harmlessly.
    """
    return getattr(game, "payoff_fingerprint", None)


@dataclass
class CacheStats:
    """Counters the service reports into the audit log.

    ``set_misses`` means "cacheable but absent" — a set solved cold for
    a game that *could* have hit.  Games without a payoff fingerprint
    are counted under ``uncacheable`` instead, so the set-hit rate is
    computed over lookups the cache could ever have answered.
    ``load_rejected`` counts persisted state the cache refused to
    serve: whole files that failed the integrity/schema checks and
    individual loaded entries that failed the Lemma-1 gate at first
    serve.
    """

    hits: int = 0
    warm_hits: int = 0
    misses: int = 0
    set_hits: int = 0
    set_misses: int = 0
    uncacheable: int = 0
    load_rejected: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.warm_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Exact-hit fraction of all solution lookups (0.0 when none)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "warm_hits": self.warm_hits,
            "misses": self.misses,
            "set_hits": self.set_hits,
            "set_misses": self.set_misses,
            "uncacheable": self.uncacheable,
            "load_rejected": self.load_rejected,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class _Snapshot:
    """Immutable copy of the counters, for delta reporting."""

    hits: int
    warm_hits: int
    misses: int


class SolveCache:
    """Cross-run cache of certified solves, support hints and sets.

    ``max_hints_per_shape`` bounds the per-shape support-hint list
    (most-recently-confirmed first); ``use_hints=False`` disables the
    near-repeat warm path entirely, leaving only exact-fingerprint
    hits — useful when bit-reproducibility of *which* equilibrium a
    degenerate game yields must not depend on cache warmth.

    ``max_entries`` bounds each of the profile, set and hint-shape
    stores (least-recently-used entries are evicted) so an always-on
    service answering a long stream of mostly-distinct games holds
    steady memory; ``None`` removes the bound.  Eviction only ever
    costs a re-solve — an evicted entry's next lookup is an ordinary
    miss.

    ``path`` makes the cache persistent: :meth:`load` restores warm
    state from the file (done automatically at construction when
    ``autoload`` is true and the file exists) and :meth:`save` /
    :meth:`close` write it back atomically.  Loading is
    tamper-rejecting — see :mod:`repro.service.persistence` and
    :attr:`last_load_report` — and every loaded profile passes the
    exact Lemma-1 gate against the requesting caller's game before its
    first serve.
    """

    DEFAULT_MAX_ENTRIES = 4096

    def __init__(self, max_hints_per_shape: int = 8, use_hints: bool = True,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES,
                 path: str | os.PathLike | None = None,
                 autoload: bool = True, autosave: bool = True):
        if max_hints_per_shape < 0:
            raise ValueError("max_hints_per_shape must be non-negative")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self._profiles: dict[tuple[str, str, str], MixedProfile] = {}
        self._sets: dict[tuple[str, bool], tuple[MixedProfile, ...]] = {}
        self._hints: dict[tuple[int, int], list] = {}
        # Entries restored from disk, awaiting their first-serve
        # re-certification through the Lemma-1 gate (they promote into
        # the live stores above on success, and are dropped — counted
        # as load_rejected — on failure).
        self._pending_profiles: dict[tuple[str, str, str], MixedProfile] = {}
        self._pending_sets: dict[tuple[str, bool], tuple[MixedProfile, ...]] = {}
        self._max_hints = max_hints_per_shape
        self._max_entries = max_entries
        self._use_hints = use_hints
        self._lock = threading.Lock()
        # Write-behind seam: with tracking on, every committed update
        # (profile store, cold set store, hint promotion) is queued as a
        # ``(kind, key, value)`` tuple for a journal to flush.  Off by
        # default so a journal-less cache never grows an unbounded list.
        self._track_updates = False
        self._updates: list[tuple] = []
        self.stats = CacheStats()
        self.path = None if path is None else os.fspath(path)
        self._autosave = autosave
        #: Outcome of the most recent :meth:`load` (None before any).
        self.last_load_report: CacheLoadReport | None = None
        self._load_rejections: list[dict] = []
        if self.path is not None and autoload and os.path.exists(self.path):
            self.load()

    def _touch(self, store: dict, key) -> None:
        """Mark ``key`` most-recently-used (dicts iterate oldest-first)."""
        store[key] = store.pop(key)

    def _evict(self, store: dict) -> None:
        if self._max_entries is None:
            return
        while len(store) > self._max_entries:
            store.pop(next(iter(store)))

    def _note_rejection(self, **details) -> None:
        """Record (under the lock) persisted state refused at load/serve."""
        self.stats.load_rejected += 1  # repro: allow[R5] -- private helper: every caller holds _lock
        self._load_rejections.append(details)

    def note_rejection(self, **details) -> None:
        """Public face of :meth:`_note_rejection` (for journal replays)."""
        with self._lock:
            self._note_rejection(**details)

    def _note_update(self, kind: str, key, value) -> None:
        """Queue (under the lock) one committed update for write-behind."""
        if self._track_updates:
            self._updates.append((kind, key, value))

    # ------------------------------------------------------------------
    # The write-behind seam: dirty-entry tracking
    # ------------------------------------------------------------------

    def set_update_tracking(self, enabled: bool) -> None:
        """Arm (or disarm) dirty-entry tracking for write-behind flushes.

        A :class:`~repro.server.journal.WriteBehindPersister` arms this
        and periodically :meth:`drain_updates`; disarming also discards
        anything queued, so tracking can never leak unbounded memory
        after its consumer goes away.
        """
        with self._lock:
            self._track_updates = bool(enabled)
            if not self._track_updates:
                self._updates = []

    def drain_updates(self) -> list[tuple]:
        """Pop the queued ``(kind, key, value)`` updates (oldest first)."""
        with self._lock:
            updates = self._updates
            self._updates = []
        return updates

    # ------------------------------------------------------------------
    # Single certified solutions (the inventor's find-one path)
    # ------------------------------------------------------------------

    def lookup_profile(
        self, fingerprint: str, method: str, mode: str,
        game: BimatrixGame | None = None,
    ) -> MixedProfile | None:
        """The cached certified profile for this exact configuration.

        ``game`` is the game the caller fingerprinted (used only to
        re-certify entries restored from disk: a pending loaded profile
        runs the Lemma-1 lattice gate against *this* game's exact
        payoffs and either promotes to a live hit or is rejected and
        dropped).  Without a game, pending entries are not servable and
        the lookup falls through to a miss — live entries are
        unaffected.

        A miss is *not* counted here — the caller decides whether the
        cold solve that follows was hint-warmed or fully cold and
        reports it via :meth:`note_solved`.
        """
        key = (fingerprint, method, mode)
        with self._lock:
            profile = self._profiles.get(key)
            if profile is not None:
                self.stats.hits += 1
                self._touch(self._profiles, key)
                return profile
            if game is None:
                # Game-less lookups cannot run the gate; the pending
                # entry stays put for a caller that can.
                return None
            pending = self._pending_profiles.pop(key, None)
        if pending is None:
            return None
        # The first-serve gate: certify outside the lock (pure reads of
        # the game's cached integer lattice), then commit the verdict.
        from repro.equilibria.mixed import certify_mixed_profile

        certified = _gate(certify_mixed_profile, game, pending)
        with self._lock:
            if certified is None:
                self._note_rejection(
                    kind="profile", fingerprint=fingerprint, method=method,
                    mode=mode, reason="loaded profile failed the Lemma-1 gate",
                )
                return None
            self.stats.hits += 1
            self._profiles[key] = certified
            self._evict(self._profiles)
        return certified

    def store_profile(
        self, fingerprint: str, method: str, mode: str, profile: MixedProfile
    ) -> None:
        with self._lock:
            key = (fingerprint, method, mode)
            self._pending_profiles.pop(key, None)
            self._profiles[key] = profile
            self._evict(self._profiles)
            self._note_update("profile", key, profile)

    def note_solved(self, warm: bool) -> None:
        """Record how a non-hit solve resolved (hint-warmed or cold)."""
        with self._lock:
            if warm:
                self.stats.warm_hits += 1
            else:
                self.stats.misses += 1

    # ------------------------------------------------------------------
    # Support hints (the cross-run warm-start seam)
    # ------------------------------------------------------------------

    def support_hints(self, shape: tuple[int, int]) -> tuple:
        """Recently winning ``(row_support, col_support)`` pairs for a shape."""
        if not self._use_hints:
            return ()
        shape = tuple(shape)
        with self._lock:
            hints = self._hints.get(shape)
            if hints is None:
                return ()
            self._touch(self._hints, shape)
            return tuple(hints)

    def note_hint(self, shape: tuple[int, int], pair) -> None:
        """Promote a freshly confirmed winning support pair to the front."""
        if not self._use_hints or self._max_hints == 0:
            return
        shape = tuple(shape)
        with self._lock:
            if shape in self._hints:
                hints = self._hints[shape]
                self._touch(self._hints, shape)
            else:
                hints = self._hints[shape] = []
                self._evict(self._hints)
            if pair in hints:
                hints.remove(pair)
            hints.insert(0, pair)
            del hints[self._max_hints:]
            self._note_update("hint", shape, pair)

    # ------------------------------------------------------------------
    # Certified equilibrium sets (full enumeration results)
    # ------------------------------------------------------------------

    def equilibrium_set(
        self,
        game: BimatrixGame,
        policy=None,
        executor=None,
        equal_size_only: bool = False,
    ) -> tuple[MixedProfile, ...]:
        """All equilibria of ``game``, served from cache on exact repeats.

        Keyed by payoff fingerprint only: every search mode provably
        returns the same (bit-identical, exact) set, so a set computed
        under one policy answers for all of them.  Cold calls delegate
        to :func:`repro.equilibria.support_enumeration.support_enumeration`
        with the given policy/executor and store the certified result.
        A set restored from disk re-certifies every member through the
        Lemma-1 gate against ``game`` before its first serve (the
        membership half of the contract; completeness of a stored set
        is covered by the file digest — see
        :mod:`repro.service.persistence`).
        """
        from repro.equilibria.support_enumeration import support_enumeration

        fingerprint = game_fingerprint(game)
        key = (fingerprint, equal_size_only)
        pending = None
        if fingerprint is not None:
            with self._lock:
                cached = self._sets.get(key)
                if cached is not None:
                    self.stats.set_hits += 1
                    self._touch(self._sets, key)
                    return cached
                pending = self._pending_sets.pop(key, None)
        if pending is not None:
            from repro.equilibria.mixed import certify_many

            verdicts = _gate(certify_many, game, pending) or []
            if len(verdicts) == len(pending) and all(
                v is not None for v in verdicts
            ):
                with self._lock:
                    self.stats.set_hits += 1
                    self._sets[key] = pending
                    self._evict(self._sets)
                return pending
            with self._lock:
                self._note_rejection(
                    kind="set", fingerprint=fingerprint,
                    equal_size_only=equal_size_only,
                    reason="loaded set member failed the Lemma-1 gate",
                )
        result = support_enumeration(
            game, equal_size_only=equal_size_only, policy=policy,
            executor=executor,
        )
        with self._lock:
            if fingerprint is None:
                self.stats.uncacheable += 1
            else:
                self.stats.set_misses += 1
                self._sets[key] = result
                self._evict(self._sets)
                self._note_update("set", key, result)
        return result

    # ------------------------------------------------------------------
    # Persistence: exact on-disk warm state
    # ------------------------------------------------------------------

    def save(self, path: str | os.PathLike | None = None) -> int:
        """Atomically persist the cache's warm state; returns entry count.

        Still-pending loaded entries ride along unchanged (they were on
        disk already and keep their not-yet-re-certified status on the
        next load), ordered before the live stores so a save/load round
        trip preserves LRU order.  The write itself is snapshot-
        consistent: contents are copied under the lock, encoded and
        written outside it, and land via temp file + ``os.replace`` —
        a save concurrent with an active drain yields a complete,
        loadable file of *some* consistent recent state.
        """
        target = self.path if path is None else os.fspath(path)
        if target is None:
            raise PersistenceError("this SolveCache has no path to save to")
        with self._lock:
            state = CacheState(
                profiles={**self._pending_profiles, **self._profiles},
                sets={**self._pending_sets, **self._sets},
                hints={
                    shape: list(pairs) for shape, pairs in self._hints.items()
                },
            )
        write_cache_file(target, state)
        return state.entry_count

    def load(self, path: str | os.PathLike | None = None) -> CacheLoadReport:
        """Restore warm state from disk; tamper-rejecting, all-or-nothing.

        On success the file's profiles and sets enter the *pending*
        stores — each is re-certified through the exact Lemma-1 gate
        against the requesting caller's game before its first serve —
        and hints go live directly (a stale or hostile hint can only
        ever cost one exact re-solve, by construction).  On *any*
        integrity, schema or decoding failure — including a missing
        file — nothing is restored: the cache keeps serving clean
        misses, the report says why, and the rejection is queued for
        the service's ``cache.load.rejected`` audit record.
        """
        target = self.path if path is None else os.fspath(path)
        if target is None:
            raise PersistenceError("this SolveCache has no path to load from")
        try:
            state = read_cache_file(target)
        except FileNotFoundError:
            report = CacheLoadReport(
                path=target, accepted=False, reason="file not found"
            )
            self.last_load_report = report
            return report
        except (PersistenceError, OSError) as exc:
            report = CacheLoadReport(
                path=target, accepted=False, reason=str(exc)
            )
            with self._lock:
                self._note_rejection(kind="file", path=target, reason=str(exc))
            self.last_load_report = report
            return report
        self.merge_pending_state(state)
        report = CacheLoadReport(
            path=target, accepted=True,
            profiles=len(state.profiles), sets=len(state.sets),
            hints=len(state.hints),
        )
        self.last_load_report = report
        return report

    def merge_pending_state(self, state: CacheState) -> int:
        """Merge decoded warm state into the *pending* stores; entry count.

        The shared back half of :meth:`load`, also the entry point for a
        journal replay (:mod:`repro.server.journal`): profiles and sets
        become pending — each re-certified through the Lemma-1 gate
        against the requesting caller's actual game before first
        serve — and hints go live directly (a stale or hostile hint can
        only ever cost one exact re-solve).  Live entries are never
        displaced by loaded ones.
        """
        merged = 0
        with self._lock:
            limit = self._max_entries
            for key, profile in _newest(state.profiles, limit).items():
                if key not in self._profiles:
                    self._pending_profiles[key] = profile
                    self._evict(self._pending_profiles)
                    merged += 1
            for key, profiles in _newest(state.sets, limit).items():
                if key not in self._sets:
                    self._pending_sets[key] = profiles
                    self._evict(self._pending_sets)
                    merged += 1
            if self._use_hints:
                for shape, pairs in _newest(state.hints, limit).items():
                    merged_pairs = self._hints.setdefault(shape, [])
                    for pair in pairs:
                        if pair not in merged_pairs:
                            merged_pairs.append(pair)
                    del merged_pairs[self._max_hints:]
                    merged += 1
                self._evict(self._hints)
        return merged

    @property
    def autosave(self) -> bool:
        """Whether :meth:`close` (and a closing service) should save."""
        return self._autosave

    def drain_rejections(self) -> list[dict]:
        """Pop the queued load/serve rejection details (for audit)."""
        with self._lock:
            rejections = self._load_rejections
            self._load_rejections = []
        return rejections

    def close(self) -> None:
        """Autosave (when a path is set) and return; idempotent.

        The cache stays usable after closing — ``close`` is a flush
        point, mirroring the service's own non-final ``close``.
        """
        if self.path is not None and self._autosave:
            self.save()

    def __enter__(self) -> "SolveCache":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Servable entries: live + pending profiles/sets + hint shapes."""
        with self._lock:
            return (
                len(self._profiles) + len(self._sets) + len(self._hints)
                + len(self._pending_profiles) + len(self._pending_sets)
            )

    def snapshot(self) -> _Snapshot:
        """Counter snapshot for delta reporting (see the service drain)."""
        with self._lock:
            return _Snapshot(
                hits=self.stats.hits,
                warm_hits=self.stats.warm_hits,
                misses=self.stats.misses,
            )

    def delta_since(self, snapshot: _Snapshot) -> dict:
        """Hit/warm/miss counts accumulated since ``snapshot``."""
        with self._lock:
            hits = self.stats.hits - snapshot.hits
            warm = self.stats.warm_hits - snapshot.warm_hits
            misses = self.stats.misses - snapshot.misses
        lookups = hits + warm + misses
        return {
            "cache_hits": hits,
            "cache_warm_hits": warm,
            "cache_misses": misses,
            "cache_hit_rate": hits / lookups if lookups else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()
            self._sets.clear()
            self._hints.clear()
            self._pending_profiles.clear()
            self._pending_sets.clear()
            self._load_rejections.clear()
            self._updates.clear()
            self.stats = CacheStats()


def _newest(store: dict, limit: int | None) -> dict:
    """The last ``limit`` items of an oldest-first mapping (all if None)."""
    if limit is None or len(store) <= limit:
        return store
    keys = list(store)[-limit:]
    return {key: store[key] for key in keys}


def _gate(check, game, value):
    """Run a certification check, treating *any* failure as rejection.

    A loaded entry whose shape does not even fit the game (possible
    only with a forged digest) raises from deep in the gate; that is a
    rejection, not a crash — the caller falls back to a cold solve.
    """
    try:
        return check(game, value)
    except Exception:
        return None
