"""Deterministic fault injection for the service/server stack.

The paper's authority must stay trustworthy when *participants*
misbehave; this module is the operational counterpart — the stack must
degrade predictably when the *infrastructure* misbehaves: a solver that
wedges, a verifier worker that dies, a process pool that breaks
mid-screen, a disk that refuses or corrupts writes, a pump iteration
that throws.  A :class:`FaultPlan` scripts such failures exactly —
which injection point, which call, which action — so a chaos test is as
reproducible as any other seeded test: the same plan against the same
stream fails in the same place every run.

**Injection points.**  A small closed catalogue, each one a named line
the production code already crosses:

======================  ================================================
``solve``               the drain's solve stage (cache lookup + search),
                        :meth:`AuthorityService._stage_solve`
``verify.conclude``     the verify/conclude stage (inline or on a
                        verify-pool puller)
``pool.chunk``          a screening executor handing chunks to its pool
``journal.append``      the write-behind journal's durable append
``snapshot.write``      the atomic whole-cache snapshot write
``cache.load``          reading warm state (snapshot bytes) from disk
``pump.iteration``      one iteration of the HTTP server's drain pump
======================  ================================================

**Actions.**  ``raise`` (a chosen exception type), ``hang`` (a bounded
sleep — interruptible by :func:`disarm`, so an abandoned sleeper never
outlives a test), and ``corrupt`` (deterministically flip one bit of
the bytes passing through the point — only meaningful at byte-carrying
points, ignored elsewhere).  Every spec fires on its *nth* call to the
point and for a configurable number of consecutive calls, so a plan can
say "the third solve raises, the first two journal flushes write
corrupt frames, everything else is healthy".

**Arming.**  Programmatic — :func:`arm` / :func:`disarm` /
``with armed(plan):`` — or via the environment: ``REPRO_FAULT_PLAN``
holds a compact plan string (see :func:`parse_plan`) and is read once
at import, so a *child process* (the crash-recovery harnesses spawn
real servers) starts life with the plan armed.

**Disarmed cost.**  The production call sites are
``faults.check(point)`` / ``faults.filter_bytes(point, data)``; when no
plan is armed both are a module-global load and an ``is None`` test —
no dict lookups, no string matching, nothing seeded.  The
``benchmarks/check_chaos_regression.py`` gate holds this to < 1% of a
warm-stream consult.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import FaultInjected, PersistenceError, ProtocolError

#: The environment variable holding a compact plan (see parse_plan).
ENV_VAR = "REPRO_FAULT_PLAN"

#: The closed catalogue of injection points.
INJECTION_POINTS = (
    "solve",
    "verify.conclude",
    "pool.chunk",
    "journal.append",
    "snapshot.write",
    "cache.load",
    "pump.iteration",
)

#: The supported actions.
ACTIONS = ("raise", "hang", "corrupt")

#: Injection points whose call sites carry bytes (corrupt is meaningful).
BYTE_POINTS = ("journal.append", "snapshot.write", "cache.load")


def _broken_pool() -> type:
    from concurrent.futures.process import BrokenProcessPool

    return BrokenProcessPool


#: Named exception types a ``raise`` spec may choose.  ``fault`` (the
#: default) is the typed chaos error; the rest let a plan speak each
#: subsystem's native failure dialect — ``broken-pool`` exercises the
#: executor rebuild latch, ``oserror`` the journal's disk-failure
#: retry/degrade path, ``system-exit`` a worker-killing crash that
#: escapes ``except Exception`` routing (puller respawn).
_ERROR_FACTORIES = {
    "fault": lambda: FaultInjected,
    "runtime": lambda: RuntimeError,
    "oserror": lambda: OSError,
    "persistence": lambda: PersistenceError,
    "broken-pool": _broken_pool,
    "system-exit": lambda: SystemExit,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scripted failure: *point*, *action*, and when it fires.

    ``nth`` is the 1-based call index at which the spec starts firing;
    ``times`` is how many consecutive calls it covers (``0`` means
    every call from ``nth`` on).  ``seconds`` bounds a ``hang``;
    ``error`` names the exception type a ``raise`` throws.
    """

    point: str
    action: str
    nth: int = 1
    times: int = 1
    seconds: float = 0.01
    error: str = "fault"

    def __post_init__(self):
        if self.point not in INJECTION_POINTS:
            raise ProtocolError(
                f"unknown injection point {self.point!r} "
                f"(catalogue: {', '.join(INJECTION_POINTS)})"
            )
        if self.action not in ACTIONS:
            raise ProtocolError(f"unknown fault action {self.action!r}")
        if self.nth < 1:
            raise ProtocolError("fault nth is 1-based and must be >= 1")
        if self.times < 0:
            raise ProtocolError("fault times must be >= 0 (0 = forever)")
        if self.seconds < 0:
            raise ProtocolError("hang seconds must be non-negative")
        if self.action == "raise" and self.error not in _ERROR_FACTORIES:
            raise ProtocolError(
                f"unknown fault error {self.error!r} "
                f"(known: {', '.join(sorted(_ERROR_FACTORIES))})"
            )

    def covers(self, call: int) -> bool:
        """Whether this spec fires on the point's ``call``-th hit."""
        if call < self.nth:
            return False
        return self.times == 0 or call < self.nth + self.times


@dataclass
class FaultRecord:
    """One firing, for a test's assertions (``plan.fired``)."""

    point: str
    action: str
    call: int


class FaultPlan:
    """A seeded, deterministic script of injected failures.

    Thread-safe: call counters are kept under a lock (injection points
    are hit from the drain thread, verify pullers, the deadline
    watchdog and the server's executor threads at once), and hangs
    sleep on an event that :func:`disarm` sets — a plan never strands a
    sleeper past its own lifetime.
    """

    def __init__(self, specs, seed: int = 0):
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ProtocolError(f"not a FaultSpec: {spec!r}")
        self.seed = seed
        self._lock = threading.Lock()
        self._calls = {point: 0 for point in INJECTION_POINTS}
        #: Every firing, in order (telemetry for test assertions).
        self.fired: list[FaultRecord] = []
        self._release = threading.Event()

    def calls(self, point: str) -> int:
        """How many times ``point`` has been hit under this plan."""
        with self._lock:
            return self._calls[point]

    def release_hangs(self) -> None:
        """Wake every in-flight (and future) hang immediately."""
        self._release.set()

    def apply(self, point: str, data: bytes | None = None) -> bytes | None:
        """Count one hit of ``point`` and run whatever specs fire.

        Returns ``data`` (possibly corrupted).  ``raise`` specs raise;
        ``hang`` specs sleep (bounded, interruptible); ``corrupt``
        specs flip one seeded bit of ``data`` and are ignored when the
        point carries no bytes.
        """
        with self._lock:
            self._calls[point] += 1
            call = self._calls[point]
            due = [spec for spec in self.specs
                   if spec.point == point and spec.covers(call)]
            for spec in due:
                self.fired.append(FaultRecord(point, spec.action, call))
        for spec in due:
            if spec.action == "hang":
                self._release.wait(spec.seconds)
            elif spec.action == "corrupt":
                if data:
                    data = self._corrupt(point, call, data)
            else:  # raise
                error = _ERROR_FACTORIES[spec.error]()
                raise error(
                    f"injected fault at {point!r} (call {call})"
                )
        return data

    def _corrupt(self, point: str, call: int, data: bytes) -> bytes:
        """Flip one deterministic bit of ``data`` (seed, point, call)."""
        rng = random.Random(f"{self.seed}:{point}:{call}")
        position = rng.randrange(len(data))
        bit = 1 << rng.randrange(8)
        mutated = bytearray(data)
        mutated[position] ^= bit
        return bytes(mutated)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"


def parse_plan(text: str) -> FaultPlan:
    """Parse the compact ``REPRO_FAULT_PLAN`` grammar into a plan.

    Clauses are ``;``-separated.  ``seed=<int>`` sets the corruption
    seed; every other clause is::

        point:action[:param][@nth[x(times|*)]]

    where ``param`` is the hang's seconds or the raise's error name,
    ``@nth`` is the 1-based call to start firing on (default 1) and
    ``x<times>`` the consecutive-call count (default 1; ``x*`` means
    every call from ``nth`` on).  Examples::

        solve:raise@3                   third solve raises FaultInjected
        solve:hang:30@1                 first solve wedges for 30s
        journal.append:corrupt@2x2      flushes 2 and 3 write torn frames
        snapshot.write:raise:oserror@1  first snapshot hits a dead disk
    """
    specs = []
    seed = 0
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise ProtocolError(f"bad fault-plan seed: {clause!r}") \
                    from None
            continue
        body, at, schedule = clause.partition("@")
        nth, times = 1, 1
        if at:
            count, x, repeat = schedule.partition("x")
            try:
                nth = int(count)
                if x:
                    times = 0 if repeat == "*" else int(repeat)
            except ValueError:
                raise ProtocolError(
                    f"bad fault-plan schedule in {clause!r}"
                ) from None
        parts = body.split(":")
        if len(parts) < 2 or len(parts) > 3:
            raise ProtocolError(f"bad fault-plan clause {clause!r}")
        point, action = parts[0], parts[1]
        kwargs: dict = {"point": point, "action": action,
                        "nth": nth, "times": times}
        if len(parts) == 3:
            if action == "hang":
                try:
                    kwargs["seconds"] = float(parts[2])
                except ValueError:
                    raise ProtocolError(
                        f"bad hang seconds in {clause!r}"
                    ) from None
            elif action == "raise":
                kwargs["error"] = parts[2]
            else:
                raise ProtocolError(
                    f"corrupt takes no parameter ({clause!r})"
                )
        specs.append(FaultSpec(**kwargs))
    return FaultPlan(specs, seed=seed)


# ----------------------------------------------------------------------
# Module-level arming — THE hot-path contract
# ----------------------------------------------------------------------
#
# _PLAN is the single global the production call sites read.  Disarmed,
# check()/filter_bytes() are one global load and one identity test;
# nothing else runs.

_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active fault plan."""
    global _PLAN
    _PLAN = plan
    return plan


def disarm() -> FaultPlan | None:
    """Deactivate the current plan (waking its sleepers); returns it."""
    global _PLAN
    plan, _PLAN = _PLAN, None
    if plan is not None:
        plan.release_hangs()
    return plan


def active() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _PLAN


@contextmanager
def armed(plan: FaultPlan | str):
    """Scoped arming for tests: always disarms (and wakes sleepers)."""
    if isinstance(plan, str):
        plan = parse_plan(plan)
    arm(plan)
    try:
        yield plan
    finally:
        if _PLAN is plan:
            disarm()
        else:  # pragma: no cover - a nested arm replaced us
            plan.release_hangs()


def check(point: str) -> None:
    """Hit a byte-less injection point (raise/hang if scripted)."""
    plan = _PLAN
    if plan is not None:
        plan.apply(point)


def filter_bytes(point: str, data: bytes) -> bytes:
    """Hit a byte-carrying injection point; returns (possibly
    corrupted) ``data``."""
    plan = _PLAN
    if plan is not None:
        return plan.apply(point, data)
    return data


def arm_from_env() -> FaultPlan | None:
    """Arm from ``REPRO_FAULT_PLAN`` when set (import-time hook)."""
    text = os.environ.get(ENV_VAR, "").strip()
    if not text:
        return None
    return arm(parse_plan(text))


arm_from_env()

# Unambiguous aliases for the package-level (repro.service) exports —
# ``arm``/``armed`` are clear as ``faults.arm``, too generic bare.
arm_fault_plan = arm
disarm_fault_plan = disarm
armed_faults = armed
parse_fault_plan = parse_plan
