"""Self-tuning for the consultation service: telemetry in, knobs out.

The service's fixed knobs — ``verify_workers`` and the inventors'
screening shard counts — were operator guesses; the telemetry to choose
them (``solve_ms``, ``verify_ms``, queue depth) already flows through
every consultation.  This module closes the loop: an
:class:`AdaptiveController` consumes one :class:`DrainSample` per drain
and emits :class:`Resize` decisions that the service applies between
drains and records in the audit log (``service.autotune.resized``).

Design rules:

* **Deterministic.**  The controller is a pure state machine over the
  sample stream — no clocks, no randomness — so a fixed telemetry trace
  replays to the identical decision sequence (tests pin this).  Wall
  times feed the EWMAs, so two *live* runs may of course tune
  differently; the *policy* is what is deterministic.
* **Hysteretic.**  Decisions move one step at a time, only when the
  smoothed signal leaves a dead band, and never before the per-knob
  cooldown expires — a noisy drain cannot make the pool breathe on
  every sample.
* **Bounded.**  Every knob is clamped to configured bounds; the
  controller can never resize outside them, whatever the telemetry
  claims.

The policy itself is the obvious queueing argument.  The drain thread
solves serially while ``verify_workers`` threads certify off-path, so
the pipeline is balanced when the verify stage's per-item service time
divided by its worker count matches the solve stage's: the worker
target is ``ewma(verify_ms) / ewma(solve_ms)`` clamped to bounds, with
a persistent backlog (queue depth above ``depth_pressure``) pushing one
step beyond balance.  Screening shards follow the same shape against
``shard_solve_ms`` — the per-shard solve-time quantum: an inventor
whose smoothed solve time is worth ``k`` quanta is offered ``k``
shards.  This is bounded-resource rationality applied to the authority
itself: effort adapts to measured load, soundness never depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ProtocolError

#: Backpressure policies (see AutotuneConfig.backpressure).
BACKPRESSURE_RAISE = "raise"
BACKPRESSURE_BLOCK = "block"


@dataclass(frozen=True)
class AutotuneConfig:
    """Bounds and dead bands for the adaptive controller.

    ``min_verify_workers``/``max_verify_workers`` bound the off-path
    verification pool; ``min_shard_workers``/``max_shard_workers``
    bound per-inventor screening shard counts, with ``shard_solve_ms``
    the per-shard solve-time quantum (``None`` leaves screening alone).
    ``alpha`` is the EWMA smoothing weight of the newest sample;
    ``grow_band``/``shrink_band`` are the multiplicative dead band the
    smoothed worker target must leave before a step; ``cooldown``
    is the number of drains a knob rests after moving.
    ``depth_pressure`` marks the smoothed queue depth at which the
    controller grows the verify pool one step past balance.

    ``high_water`` arms admission backpressure: :meth:`~repro.service
    .service.AuthorityService.submit` refuses (``backpressure="raise"``)
    or blocks (``"block"``, until the pending count falls to
    ``low_water``, by default half the high-water mark) once the
    pending queue holds ``high_water`` submissions.  ``block_timeout``
    bounds a blocked admission in seconds (``None`` waits forever).
    """

    min_verify_workers: int = 1
    max_verify_workers: int = 8
    alpha: float = 0.4
    grow_band: float = 1.25
    shrink_band: float = 0.6
    cooldown: int = 2
    depth_pressure: int | None = None
    shard_solve_ms: float | None = None
    min_shard_workers: int = 1
    max_shard_workers: int = 4
    high_water: int | None = None
    low_water: int | None = None
    backpressure: str = BACKPRESSURE_RAISE
    block_timeout: float | None = None

    def __post_init__(self):
        if not 1 <= self.min_verify_workers <= self.max_verify_workers:
            raise ProtocolError("verify-worker bounds out of order")
        if not 1 <= self.min_shard_workers <= self.max_shard_workers:
            raise ProtocolError("shard-worker bounds out of order")
        if not 0.0 < self.alpha <= 1.0:
            raise ProtocolError("EWMA alpha must be in (0, 1]")
        if self.grow_band < 1.0 or not 0.0 < self.shrink_band <= 1.0:
            raise ProtocolError("dead bands out of order")
        if self.cooldown < 0:
            raise ProtocolError("cooldown must be non-negative")
        if self.high_water is not None and self.high_water < 1:
            raise ProtocolError("high_water must be positive")
        if self.low_water is not None:
            if self.high_water is None:
                raise ProtocolError("low_water needs a high_water mark")
            if not 0 <= self.low_water < self.high_water:
                raise ProtocolError("low_water must sit below high_water")
        if self.backpressure not in (BACKPRESSURE_RAISE, BACKPRESSURE_BLOCK):
            raise ProtocolError(
                f"unknown backpressure policy {self.backpressure!r}"
            )
        if self.block_timeout is not None and self.block_timeout < 0:
            raise ProtocolError("block_timeout must be non-negative")

    def resolved_low_water(self) -> int | None:
        """The release mark for blocked admissions (default: half full)."""
        if self.high_water is None:
            return None
        if self.low_water is not None:
            return self.low_water
        return self.high_water // 2


@dataclass(frozen=True)
class DrainSample:
    """One drain's telemetry, as the controller consumes it.

    ``solve_ms``/``verify_ms`` are the drain's mean per-consultation
    stage times (negative when unobserved — e.g. a drain of failures);
    ``queue_depth`` is the pending count the drain started from;
    ``inventor_solve_ms`` maps inventor names to their own mean solve
    times, feeding the per-inventor shard policy.
    """

    submissions: int
    queue_depth: int
    solve_ms: float
    verify_ms: float
    inventor_solve_ms: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Resize:
    """One applied-between-drains decision, as audited.

    ``knob`` is ``"verify_workers"`` or ``"screening_workers"`` (the
    latter carries the target ``inventor``); ``reason`` names the rule
    that fired.  The EWMA snapshot rides along so the audit record
    explains the decision without replaying the trace.
    """

    knob: str
    previous: int
    target: int
    reason: str
    inventor: str | None = None
    ewma_solve_ms: float = 0.0
    ewma_verify_ms: float = 0.0
    ewma_queue_depth: float = 0.0

    def as_audit_details(self) -> dict:
        details = {
            "knob": self.knob,
            "previous": self.previous,
            "target": self.target,
            "reason": self.reason,
            "ewma_solve_ms": self.ewma_solve_ms,
            "ewma_verify_ms": self.ewma_verify_ms,
            "ewma_queue_depth": self.ewma_queue_depth,
        }
        if self.inventor is not None:
            details["inventor"] = self.inventor
        return details


class _Ewma:
    """One exponentially weighted moving average (first sample seeds it)."""

    def __init__(self, alpha: float):
        self._alpha = alpha
        self.value: float | None = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = float(sample)
        else:
            self.value = self._alpha * float(sample) \
                + (1.0 - self._alpha) * self.value
        return self.value

    def read(self, default: float = 0.0) -> float:
        return default if self.value is None else self.value


class AdaptiveController:
    """The hysteresis controller sizing the service's pools.

    Construct with the config and the verify-worker count the service
    starts from (clamped into the configured bounds); feed one
    :class:`DrainSample` per drain to :meth:`observe` and apply the
    returned :class:`Resize` decisions.  The controller assumes its
    decisions are applied: :attr:`verify_workers` and
    :meth:`screening_workers` track the targets it has emitted.
    """

    def __init__(self, config: AutotuneConfig, verify_workers: int = 1):
        self.config = config
        self.verify_workers = max(
            config.min_verify_workers,
            min(config.max_verify_workers, verify_workers),
        )
        self._solve = _Ewma(config.alpha)
        self._verify = _Ewma(config.alpha)
        self._depth = _Ewma(config.alpha)
        self._inventor_solve: dict[str, _Ewma] = {}
        self._shards: dict[str, int] = {}
        self._cooldowns: dict[str, int] = {}
        self.samples = 0

    def screening_workers(self, inventor: str) -> int:
        """The shard count last targeted for ``inventor`` (1 untouched)."""
        return self._shards.get(inventor, self.config.min_shard_workers)

    # ------------------------------------------------------------------
    # The policy
    # ------------------------------------------------------------------

    def observe(self, sample: DrainSample) -> list[Resize]:
        """Consume one drain's telemetry; emit the resizes it justifies."""
        self.samples += 1
        if sample.solve_ms >= 0.0:
            self._solve.update(sample.solve_ms)
        if sample.verify_ms >= 0.0:
            self._verify.update(sample.verify_ms)
        self._depth.update(sample.queue_depth)
        for inventor, solve_ms in sorted(sample.inventor_solve_ms.items()):
            if solve_ms >= 0.0:
                self._inventor_solve.setdefault(
                    inventor, _Ewma(self.config.alpha)
                ).update(solve_ms)
        resting = {
            knob for knob, left in self._cooldowns.items() if left > 0
        }
        decisions: list[Resize] = []
        verify = self._verify_decision()
        if verify is not None:
            decisions.append(verify)
        decisions.extend(self._shard_decisions())
        # Rest exactly ``cooldown`` samples after a move: knobs that were
        # already resting tick down; knobs that just moved start fresh.
        for knob in resting:
            self._cooldowns[knob] -= 1
        return decisions

    def _snapshot(self) -> dict:
        return {
            "ewma_solve_ms": self._solve.read(),
            "ewma_verify_ms": self._verify.read(),
            "ewma_queue_depth": self._depth.read(),
        }

    def _verify_decision(self) -> Resize | None:
        config = self.config
        if self._cooldowns.get("verify_workers", 0) > 0:
            return None
        solve = self._solve.read()
        verify = self._verify.read()
        if verify <= 0.0:
            return None
        # Balance point: one solve feeds W verifiers, so W* = verify/solve.
        balance = verify / max(solve, 1e-3)
        reason = "balance"
        if (
            config.depth_pressure is not None
            and self._depth.read() > config.depth_pressure
        ):
            balance = max(balance, self.verify_workers + 1)
            reason = "queue-pressure"
        target = max(
            config.min_verify_workers,
            min(config.max_verify_workers, round(balance)),
        )
        current = self.verify_workers
        if target > current and balance / current >= config.grow_band:
            step = current + 1
        elif target < current and balance / current <= config.shrink_band:
            step = current - 1
        else:
            return None
        self.verify_workers = step
        self._cooldowns["verify_workers"] = config.cooldown
        return Resize(
            knob="verify_workers", previous=current, target=step,
            reason=reason, **self._snapshot(),
        )

    def _shard_decisions(self) -> list[Resize]:
        config = self.config
        if config.shard_solve_ms is None:
            return []
        decisions = []
        for inventor in sorted(self._inventor_solve):
            knob = f"screening_workers:{inventor}"
            if self._cooldowns.get(knob, 0) > 0:
                continue
            solve = self._inventor_solve[inventor].read()
            quanta = solve / config.shard_solve_ms
            target = max(
                config.min_shard_workers,
                min(config.max_shard_workers, int(quanta) + 1),
            )
            current = self.screening_workers(inventor)
            if target > current and quanta / max(current, 1) \
                    >= config.grow_band:
                step = current + 1
            elif target < current and quanta / max(current, 1) \
                    <= config.shrink_band:
                step = current - 1
            else:
                continue
            self._shards[inventor] = step
            self._cooldowns[knob] = config.cooldown
            decisions.append(
                Resize(
                    knob="screening_workers", previous=current, target=step,
                    reason="shard-quanta", inventor=inventor,
                    **self._snapshot(),
                )
            )
        return decisions
