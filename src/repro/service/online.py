"""Future-based admission for the online parallel-links game.

The Sect. 6 consultation loop — arrive, ask, verify, follow — gets the
same service treatment as the core authority: arrivals are *admitted*
and handed a future; the queue drains in bursts through
:meth:`~repro.online.consultation.OnlineLinkInventorService.advise_many`
(so the per-query service setup amortizes over the burst), every advice
is proof-checked by batch deterministic recomputation
(:func:`repro.online.parallel_links.verify_suggestions`), and each
future resolves to the advice *with its verdict* so the caller can
follow-or-fallback exactly like
:func:`~repro.online.consultation.run_verified_session` does.

The adviser tracks the load trajectory itself: a verified suggestion is
followed, a rejected one falls back to the agent's own greedy choice
(and blames the inventor when given an audit log) — so with an honest
service the final loads are identical to the synchronous session
driver, which the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.audit import AuditLog
from repro.core.audit_events import EVENT_BACKPRESSURE
from repro.errors import AdmissionError, GameError
from repro.online.consultation import (
    LinkAdvice,
    OnlineLinkInventorService,
    resolve_advice,
)
from repro.online.parallel_links import verify_suggestions
from repro.service.futures import ConsultationFuture


@dataclass(frozen=True)
class VerifiedLinkAdvice:
    """What a link-arrival future resolves to: advice, verdict, action.

    ``chosen_link`` is what the agent actually does — the suggestion
    when it verified against both the recomputation rule and the
    observed loads, the greedy fallback otherwise.
    """

    advice: LinkAdvice
    verified: bool
    chosen_link: int


class BurstLinkAdviser:
    """Admission queue over an online link inventor service.

    ``submit(own_load)`` returns a future; :meth:`drain` (or any
    future's ``result()``) advises the whole queue in one burst,
    verifies the burst in one batch recomputation pass, resolves every
    future with a :class:`VerifiedLinkAdvice`, and advances the
    tracked load trajectory.

    ``max_pending`` mirrors the core service's admission backpressure:
    past that many undrained arrivals :meth:`submit` raises
    :class:`~repro.errors.AdmissionError` (audited as
    ``service.admission.backpressure`` when an audit log is attached),
    so an open-loop arrival stream sheds load instead of growing an
    unbounded burst.
    """

    def __init__(self, service: OnlineLinkInventorService, num_links: int,
                 audit: AuditLog | None = None,
                 session_id: str = "online-links-service",
                 max_pending: int | None = None):
        if num_links < 1:
            raise GameError("need at least one link")
        if max_pending is not None and max_pending < 1:
            raise GameError("max_pending must be positive")
        self._service = service
        self._audit = audit
        self._session_id = session_id
        self._max_pending = max_pending
        self.loads = [0.0] * num_links
        self._pending: list[tuple[float, ConsultationFuture]] = []
        self._counter = 0
        self.verified_count = 0
        self.rejected_count = 0
        self.shed_count = 0

    @property
    def pending_count(self) -> int:
        """Arrivals admitted but not yet drained."""
        return len(self._pending)

    def submit(self, own_load: float) -> ConsultationFuture:
        """Admit one arrival; the future resolves at the next drain."""
        if (
            self._max_pending is not None
            and len(self._pending) >= self._max_pending
        ):
            self.shed_count += 1
            if self._audit is not None:
                self._audit.record(
                    self._session_id, self._service.identity,
                    EVENT_BACKPRESSURE,
                    action="rejected", requested=1,
                    pending=len(self._pending),
                    high_water=self._max_pending, policy="raise",
                )
            raise AdmissionError(
                f"burst adviser at high-water mark "
                f"({len(self._pending)}/{self._max_pending} pending)"
            )
        self._counter += 1
        future = ConsultationFuture(
            submission_id=self._counter,
            agent=f"arrival-{self._counter - 1}",
            game_id=self._session_id,
            service=self,
            queue_depth=len(self._pending),
        )
        self._pending.append((float(own_load), future))
        return future

    def drain(self) -> int:
        """Advise, batch-verify and resolve every pending arrival.

        A failed burst (the service rejecting an arrival mid-stream,
        e.g. more arrivals than announced agents) fails every pending
        future with the error — nobody waiting on one can hang — and
        leaves the tracked loads untouched.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        try:
            own_loads = [w for w, __ in pending]
            advices = self._service.advise_many(own_loads, self.loads)
            verdicts = verify_suggestions(
                [
                    (
                        list(a.loads_snapshot), a.own_load, a.expected_load,
                        a.future_count, a.suggested_link,
                    )
                    for a in advices
                ]
            )
        except Exception as exc:
            for __, future in pending:
                future._fail(exc)
            return len(pending)
        for (own_load, future), advice, rule_ok in zip(
            pending, advices, verdicts
        ):
            verified, chosen = resolve_advice(
                advice, self.loads, rule_ok, self._audit,
                self._session_id, self._service.identity,
            )
            if verified:
                self.verified_count += 1
            else:
                self.rejected_count += 1
            self.loads[chosen] += float(own_load)
            future._resolve(
                VerifiedLinkAdvice(
                    advice=advice, verified=verified, chosen_link=chosen
                )
            )
        return len(pending)

    @property
    def makespan(self) -> float:
        return max(self.loads)
