"""The authority as a service: admission queue, futures, shared pools.

The paper's authority is an always-on loop — agents submit games,
inventors advise, verifiers certify — not a batch script.
:class:`AuthorityService` is that loop as an API:

* :meth:`submit` / :meth:`submit_many` admit consultations and return
  :class:`~repro.service.futures.ConsultationFuture`\\ s immediately;
* the admission queue drains onto the inventors' long-lived solver
  state — one shared sharded screening pool per inventor (the
  ``equilibria/executors`` seam) and the cross-run
  :class:`~repro.service.cache.SolveCache` the service attaches at
  registration — so repeat and near-repeat games skip whole screens;
* verification runs *off the solve path*: with ``verify_workers > 1``
  each admitted session's verify/conclude phase is handed to a thread
  pool while the drain loop moves on to the next solve, so certifying
  query *n* overlaps searching query *n + 1* (certification itself
  stays exact, Fractions-only, and in this process — threads are not
  workers in the soundness story);
* ``asyncio`` callers get the same core via :meth:`async_consult`,
  :meth:`async_consult_many`, :meth:`aclose` and ``async with``.

Draining is demand-driven and thread-safe: any caller blocking on a
future's ``result()`` pumps the queue (one drainer at a time; others
wait and find their futures resolved).  There is deliberately no
background thread — "async" here means *admission is decoupled from
execution*, which composes with any host: a sync caller, an asyncio
loop, or a real server front-end.

Audit integration: every drain appends a ``service.queue.drained``
record with the queue depth, cache hit/miss/warm counts, the hit rate
and the drain's worst verification time (``max_verify_ms``); every
completion appends a ``service.consultation.completed`` record with the
future's end-to-end latency, the advice's cache state and its measured
``verify_ms`` — so the search-vs-verify cost split is visible per
consultation and per drain.  Batch submissions keep emitting
the same per-inventor ``consultation.batch`` records (and
``prepare_games`` pre-solve) that ``consult_many`` always did.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.audit import (
    EVENT_BATCH_CONSULTATION,
    EVENT_CACHE_LOAD_REJECTED,
    EVENT_CACHE_LOADED,
    EVENT_CACHE_SAVED,
    EVENT_CALLBACK_FAILED,
    EVENT_SERVICE_COMPLETED,
    EVENT_SERVICE_DRAINED,
)
from repro.core.session import ConsultationSession, SessionOutcome
from repro.equilibria.executors import pools_disabled
from repro.errors import ProtocolError
from repro.games.base import Game
from repro.service.cache import SolveCache
from repro.service.futures import ConsultationFuture


@dataclass
class _Submission:
    """One admitted consultation request."""

    agent: str
    game_id: str
    privacy: str
    future: ConsultationFuture


@dataclass
class _Batch:
    """A unit of admission: one or many submissions, drained atomically.

    ``batched`` marks batches admitted through :meth:`submit_many`;
    they get the ``consultation.batch`` audit record and the
    ``prepare_games`` pre-solve, exactly like ``consult_many`` —
    single submissions skip both, exactly like ``consult``.
    """

    submissions: list = field(default_factory=list)
    batched: bool = False


class AuthorityService:
    """Async, future-based consultation facade over one authority.

    ``verify_workers`` sizes the off-path verification pool (``<= 1``
    verifies inline on the draining thread, which keeps the audit
    record order of the synchronous shims bit-identical to the
    pre-service code; ``> 1`` overlaps verification with the next
    solve).  ``solve_cache`` supplies a cross-run
    :class:`~repro.service.cache.SolveCache` (one is created when
    omitted); ``attach_cache=False`` leaves the inventors' caching
    exactly as constructed.

    ``cache_path`` makes the service's warm state persistent: a
    :class:`~repro.service.cache.SolveCache` bound to that file is
    created, warm-loaded immediately (a rejected — tampered, truncated
    or stale-schema — file starts the cache empty and appends a
    ``cache.load.rejected`` audit record), and saved back atomically on
    :meth:`close` / :meth:`aclose`.  Pass either ``cache_path`` or an
    explicit ``solve_cache``, not both — a caller-owned cache manages
    its own persistence.
    """

    def __init__(self, authority, solve_cache: SolveCache | None = None,
                 verify_workers: int = 1, attach_cache: bool = True,
                 cache_path=None):
        if verify_workers < 0:
            raise ProtocolError("verify_workers must be non-negative")
        if solve_cache is not None and cache_path is not None:
            raise ProtocolError(
                "pass either solve_cache or cache_path, not both"
            )
        self._authority = authority
        # The service persists (and audits) only a cache it created;
        # a caller-owned cache manages its own persistence.
        self._cache_owned = solve_cache is None
        if solve_cache is not None:
            self.cache = solve_cache
        else:
            self.cache = SolveCache(path=cache_path)
        self._verify_workers = verify_workers
        self._attach = attach_cache
        self._queue: deque[_Batch] = deque()
        self._admission_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._verify_pool = None
        self._verify_pool_broken = False
        self._submission_counter = 0
        self._completed = 0
        self._attach_cache()
        report = self.cache.last_load_report
        if cache_path is not None and report is not None and report.accepted:
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_CACHE_LOADED,
                **report.as_dict(),
            )
        self._flush_cache_rejections()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, agent_name: str, game_id: str,
               privacy: str = "open") -> ConsultationFuture:
        """Admit one consultation; returns its future immediately.

        The request is validated eagerly (unknown agents and games are
        rejected here, not at drain time); the hard work happens when
        the queue drains.
        """
        (future,) = self._admit(agent_name, [game_id], privacy, batched=False)
        return future

    def submit_many(self, agent_name: str, game_ids, privacy: str = "open",
                    ) -> tuple[ConsultationFuture, ...]:
        """Admit a stream of consultations as one atomic batch.

        The batch drains exactly like :meth:`RationalityAuthority
        .consult_many` executed: grouped by owning inventor, one
        ``consultation.batch`` audit record and one
        ``prepare_games`` pre-solve per group, then the individual
        sessions in submission order.
        """
        if not game_ids:
            return ()
        return self._admit(agent_name, list(game_ids), privacy, batched=True)

    def _admit(self, agent_name: str, game_ids, privacy: str,
               batched: bool) -> tuple[ConsultationFuture, ...]:
        authority = self._authority
        authority.agent(agent_name)  # raises on unknown agents
        for game_id in game_ids:
            authority.inventor_of(game_id)  # raises on unknown games
        batch = _Batch(batched=batched)
        with self._admission_lock:
            depth = sum(len(b.submissions) for b in self._queue)
            futures = []
            for game_id in game_ids:
                self._submission_counter += 1
                future = ConsultationFuture(
                    submission_id=self._submission_counter,
                    agent=agent_name,
                    game_id=game_id,
                    service=self,
                    queue_depth=depth + len(futures),
                )
                batch.submissions.append(
                    _Submission(agent_name, game_id, privacy, future)
                )
                futures.append(future)
            self._queue.append(batch)
        return tuple(futures)

    @property
    def pending_count(self) -> int:
        """Submissions admitted but not yet drained."""
        with self._admission_lock:
            return sum(len(b.submissions) for b in self._queue)

    @property
    def completed_count(self) -> int:
        return self._completed

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Process the admission queue to empty; returns completions.

        One drainer runs at a time; concurrent callers block on the
        lock and, once inside, drain whatever was admitted meanwhile
        (usually nothing — their futures were resolved by the first
        drainer).  Verification jobs dispatched off-path are all
        awaited before the drain returns, so every future admitted
        before the call is resolved afterwards.
        """
        with self._drain_lock:
            self._attach_cache()  # pick up inventors registered since
            depth_at_start = self.pending_count
            if depth_at_start == 0:
                return 0
            snapshots = [
                (cache, cache.snapshot()) for cache in self._active_caches()
            ]
            verification_jobs: list = []
            processed: list[ConsultationFuture] = []
            try:
                while True:
                    with self._admission_lock:
                        if not self._queue:
                            break
                        batch = self._queue.popleft()
                    self._process_batch(batch, verification_jobs, processed)
                for job in verification_jobs:
                    job.result()  # failures land in the futures, never here
            except BaseException as exc:
                # KeyboardInterrupt / SystemExit mid-solve: abort the
                # drain immediately (the synchronous shims propagate it
                # right away, as they always did), but fail every
                # not-yet-resolved future first so nothing waits forever
                # on work that will never run.
                self._abort_outstanding(exc, processed)
                raise
            self._completed += len(processed)
            self._flush_cache_rejections()
            latencies = [f.latency_ms for f in processed if f.latency_ms is not None]
            verify_times = [
                outcome.advice.verify_ms
                for outcome in (f.peek_outcome() for f in processed)
                if outcome is not None and outcome.advice.verify_ms >= 0.0
            ]
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_SERVICE_DRAINED,
                submissions=len(processed),
                queue_depth=depth_at_start,
                verify_workers=self._effective_verify_workers(),
                max_latency_ms=max(latencies, default=0.0),
                max_verify_ms=max(verify_times, default=0.0),
                **self._cache_deltas(snapshots),
            )
            return len(processed)

    def _abort_outstanding(self, exc: BaseException, processed: list) -> None:
        """Fail every unresolved future this drain was responsible for."""
        for future in processed:
            future._fail(exc)
        while True:
            with self._admission_lock:
                if not self._queue:
                    return
                batch = self._queue.popleft()
            for submission in batch.submissions:
                submission.future._fail(exc)

    def _active_caches(self) -> list:
        """Every solve cache this drain's solves can actually touch.

        Usually just :attr:`cache`, but an inventor constructed with —
        or previously attached to — a different cache keeps it, and the
        drain telemetry must count *that* cache's hits, not silently
        report zeros from an unused one.
        """
        caches = {id(self.cache): self.cache}
        for inventor in self._authority.inventors:
            cache = getattr(inventor, "solve_cache", None)
            if cache is not None:
                caches.setdefault(id(cache), cache)
        return list(caches.values())

    def _flush_cache_rejections(self) -> None:
        """Turn queued cache load/serve rejections into audit records.

        Covers every active cache (an inventor may carry its own
        persistent cache): each detail dict a cache refused to serve —
        a whole rejected file or a loaded entry that failed the Lemma-1
        gate at first serve — becomes one ``cache.load.rejected``
        record, so tampered warm state is visible in the audit trail,
        not just absent from the hit counters.
        """
        for cache in self._active_caches():
            drain = getattr(cache, "drain_rejections", None)
            if drain is None:
                continue
            for details in drain():
                self._authority.audit.record(
                    "-", self._authority.AUTHORITY_NAME,
                    EVENT_CACHE_LOAD_REJECTED, **details,
                )

    def _record_callback_failure(self, future, exc: BaseException) -> None:
        """Audit a raising done-callback (see ConsultationFuture)."""
        self._authority.audit.record(
            "-", self._authority.AUTHORITY_NAME, EVENT_CALLBACK_FAILED,
            submission_id=future.submission_id,
            game_id=future.game_id,
            agent=future.agent,
            error=repr(exc),
        )

    @staticmethod
    def _cache_deltas(snapshots) -> dict:
        """Aggregate hit/warm/miss deltas across the active caches."""
        totals = {"cache_hits": 0, "cache_warm_hits": 0, "cache_misses": 0}
        for cache, snapshot in snapshots:
            delta = cache.delta_since(snapshot)
            for key in totals:
                totals[key] += delta[key]
        lookups = sum(totals.values())
        totals["cache_hit_rate"] = (
            totals["cache_hits"] / lookups if lookups else 0.0
        )
        return totals

    def _process_batch(self, batch: _Batch, verification_jobs: list,
                       processed: list) -> None:
        authority = self._authority
        if batch.batched:
            by_inventor: dict[str, list[str]] = {}
            for submission in batch.submissions:
                inventor = authority.inventor_of(submission.game_id)
                by_inventor.setdefault(inventor.name, []).append(
                    submission.game_id
                )
            agent_name = batch.submissions[0].agent
            try:
                for inventor_name, ids in by_inventor.items():
                    inventor = authority.inventor_named(inventor_name)
                    distinct: dict[str, Game] = {}
                    for game_id in ids:
                        distinct.setdefault(game_id, authority.game(game_id))
                    authority.audit.record(
                        "-", authority.AUTHORITY_NAME, EVENT_BATCH_CONSULTATION,
                        inventor=inventor_name,
                        games=sorted(distinct),
                        agent=agent_name,
                    )
                    inventor.prepare_games(list(distinct.items()))
            except Exception as exc:
                # A failed pre-solve fails the whole batch, exactly as
                # consult_many used to propagate it; other batches in
                # the queue are unaffected.  (BaseException — a
                # caller's Ctrl-C — aborts the whole drain instead.)
                for submission in batch.submissions:
                    submission.future._fail(exc)
                    processed.append(submission.future)
                return
        for submission in batch.submissions:
            future = submission.future
            processed.append(future)
            try:
                session = authority.open_session(
                    submission.agent, submission.game_id
                )
                inventor = authority.inventor_of(submission.game_id)
                session.request_advice(inventor, privacy=submission.privacy)
            except Exception as exc:
                future._fail(exc)
                continue
            pool = self._verification_pool()
            if pool is None:
                self._verify_and_conclude(session, future)
            else:
                verification_jobs.append(
                    pool.submit(self._verify_and_conclude, session, future)
                )

    def _verify_and_conclude(self, session: ConsultationSession,
                             future: ConsultationFuture) -> None:
        """The off-path half: verify, conclude, resolve, audit."""
        outcome: SessionOutcome | None = None
        try:
            session.verify()
            outcome = session.conclude()
        except Exception as exc:
            future._fail(exc)
        else:
            future._resolve(outcome)
        details = {
            "game_id": future.game_id,
            "agent": future.agent,
            "queue_depth": future.queue_depth,
            "latency_ms": future.latency_ms,
        }
        if outcome is not None:
            details["cache"] = outcome.advice.cache
            details["accepted"] = outcome.majority.accepted
            details["verify_ms"] = outcome.advice.verify_ms
        else:
            details["failed"] = True
        self._authority.audit.record(
            session.session_id, self._authority.AUTHORITY_NAME,
            EVENT_SERVICE_COMPLETED, **details,
        )

    # ------------------------------------------------------------------
    # The off-path verification pool
    # ------------------------------------------------------------------

    def _effective_verify_workers(self) -> int:
        return 1 if self._verification_pool() is None else self._verify_workers

    def _verification_pool(self):
        if self._verify_workers <= 1 or pools_disabled() or self._verify_pool_broken:
            return None
        if self._verify_pool is None:
            try:
                from concurrent.futures import ThreadPoolExecutor

                self._verify_pool = ThreadPoolExecutor(
                    max_workers=self._verify_workers,
                    thread_name_prefix="repro-verify",
                )
            except (ImportError, NotImplementedError, OSError,
                    PermissionError, RuntimeError):
                # Restricted interpreter without threads: verify inline.
                self._verify_pool_broken = True
                return None
        return self._verify_pool

    # ------------------------------------------------------------------
    # Cache attachment
    # ------------------------------------------------------------------

    def _attach_cache(self) -> None:
        if not self._attach:
            return
        for inventor in self._authority.inventors:
            inventor.attach_solve_cache(self.cache)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain outstanding work and release service-held resources.

        Idempotent, and — like the authority's own ``close`` — not
        final: the service stays usable and recreates its verification
        pool lazily on the next concurrent drain.  Inventor-held pools
        belong to the authority's lifecycle, not the service's.  A
        path-bound cache is persisted here (atomic replace), so a
        ``close``\\ d — or context-managed — service never forgets its
        warm state.
        """
        self.drain()
        pool = self._verify_pool
        self._verify_pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        if self._cache_owned and self.cache.path is not None \
                and self.cache.autosave:
            entries = self.cache.save()
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_CACHE_SAVED,
                path=self.cache.path, entries=entries,
            )

    def __enter__(self) -> "AuthorityService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # asyncio wrappers — same core, awaitable surface
    # ------------------------------------------------------------------

    async def async_consult(self, agent_name: str, game_id: str,
                            privacy: str = "open") -> SessionOutcome:
        """Awaitable consult: admit, drain off-loop, await the outcome.

        Draining runs in the event loop's default thread pool, so many
        concurrent ``async_consult`` tasks coalesce: the first drainer
        pumps everyone's submissions while the rest await resolved
        futures.
        """
        future = self.submit(agent_name, game_id, privacy=privacy)
        return await self._await_future(future)

    async def async_consult_many(self, agent_name: str, game_ids,
                                 privacy: str = "open",
                                 ) -> tuple[SessionOutcome, ...]:
        """Awaitable batch consult (one atomic batch, like submit_many)."""
        futures = self.submit_many(agent_name, game_ids, privacy=privacy)
        if not futures:
            return ()
        await self.async_drain()
        return tuple(future.result() for future in futures)

    async def async_drain(self) -> int:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.drain)

    async def _await_future(self, future: ConsultationFuture) -> SessionOutcome:
        await self.async_drain()
        return future.result()

    async def aclose(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    async def __aenter__(self) -> "AuthorityService":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.aclose()
        return False
