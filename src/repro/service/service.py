"""The authority as a service: admission queue, futures, shared pools.

The paper's authority is an always-on loop — agents submit games,
inventors advise, verifiers certify — not a batch script.
:class:`AuthorityService` is that loop as an API:

* :meth:`submit` / :meth:`submit_many` admit consultations and return
  :class:`~repro.service.futures.ConsultationFuture`\\ s immediately;
* the admission queue drains onto the inventors' long-lived solver
  state — one shared sharded screening pool per inventor (the
  ``equilibria/executors`` seam) and the cross-run
  :class:`~repro.service.cache.SolveCache` the service attaches at
  registration — so repeat and near-repeat games skip whole screens;
* the drain is an explicit **pipeline**: the draining thread runs the
  *solve* stage (cache lookup, screening, advice) and hands each
  session to the *verify/conclude* stage — a queue the off-path pool's
  workers pull from (``verify_workers > 1``) — so batch *k + 1* solves
  while batch *k* certifies.  With ``verify_workers <= 1``, under
  ``REPRO_FORCE_SERIAL``, or on an interpreter without threads, the
  stage collapses to the inline serial path, and by construction both
  paths produce bit-identical outcomes (certification itself stays
  exact, Fractions/int-lattice only, and in this process — threads are
  not workers in the soundness story);
* admission applies **backpressure** past a configured high-water mark
  (:class:`~repro.errors.AdmissionError`, or blocking, per policy) and
  an :class:`~repro.service.autotune.AdaptiveController` can retune
  ``verify_workers`` and per-inventor screening shards between drains
  from the service's own telemetry — every resize lands in the audit
  log as ``service.autotune.resized``;
* ``asyncio`` callers get the same core via :meth:`async_consult`,
  :meth:`async_consult_many`, :meth:`aclose` and ``async with``.

Draining is demand-driven and thread-safe: any caller blocking on a
future's ``result()`` pumps the queue (one drainer at a time; others
wait and find their futures resolved).  There is deliberately no
background thread — "async" here means *admission is decoupled from
execution*, which composes with any host: a sync caller, an asyncio
loop, or a real server front-end.

Audit integration: every drain appends a ``service.queue.drained``
record with the queue depth, cache hit/miss/warm counts, the hit rate,
the p50/p95/p99/max of the drain's per-consultation latencies and the
drain's worst verification time (``max_verify_ms``); every completion
appends a ``service.consultation.completed`` record with the future's
end-to-end latency, the advice's cache state and its measured
``verify_ms`` — so the search-vs-verify cost split is visible per
consultation and per drain.  Shed or blocked admissions append
``service.admission.backpressure``; controller decisions append
``service.autotune.resized``.  Batch submissions keep emitting the
same per-inventor ``consultation.batch`` records (and
``prepare_games`` pre-solve) that ``consult_many`` always did.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.stats import latency_summary
from repro.core.audit_events import (
    EVENT_AUTOTUNE_RESIZED,
    EVENT_BACKPRESSURE,
    EVENT_BATCH_CONSULTATION,
    EVENT_CACHE_LOAD_REJECTED,
    EVENT_CACHE_LOADED,
    EVENT_CACHE_SAVED,
    EVENT_CALLBACK_FAILED,
    EVENT_DEADLINE_EXCEEDED,
    EVENT_POOL_DEGRADED,
    EVENT_POOL_REBUILT,
    EVENT_SERVICE_COMPLETED,
    EVENT_SERVICE_DRAINED,
    EVENT_VERIFY_RESPAWNED,
)
from repro.core.session import ConsultationSession, SessionOutcome
from repro.equilibria.executors import pools_disabled
from repro.errors import AdmissionError, DeadlineExceeded, ProtocolError
from repro.games.base import Game
from repro.service import faults
from repro.service.autotune import (
    BACKPRESSURE_BLOCK,
    BACKPRESSURE_RAISE,
    AdaptiveController,
    AutotuneConfig,
    DrainSample,
)
from repro.service.cache import SolveCache
from repro.service.futures import ConsultationFuture


@dataclass
class _Submission:
    """One admitted consultation request.

    ``deadline`` is the absolute ``time.monotonic()`` instant by which
    the consultation must resolve (``None`` = unbounded); past it the
    drain resolves the future to
    :class:`~repro.errors.DeadlineExceeded` instead of working on it.
    """

    agent: str
    game_id: str
    privacy: str
    future: ConsultationFuture
    deadline: float | None = None


@dataclass
class _Batch:
    """A unit of admission: one or many submissions, drained atomically.

    ``batched`` marks batches admitted through :meth:`submit_many`;
    they get the ``consultation.batch`` audit record and the
    ``prepare_games`` pre-solve, exactly like ``consult_many`` —
    single submissions skip both, exactly like ``consult``.
    """

    submissions: list = field(default_factory=list)
    batched: bool = False


class _VerifyStage:
    """The verify/conclude stage of the pipelined drain.

    A plain queue with ``workers`` pool threads pulling from it: the
    draining thread :meth:`dispatch`\\ es each solved session's
    verify/conclude job and immediately moves on to the next solve, so
    certification of consultation *n* overlaps the search for *n + 1*.
    Jobs route their own failures into their consultation futures, so a
    worker never dies of a job; :meth:`join` is the per-drain barrier
    (every future admitted before the drain resolves before it
    returns), :meth:`stop` retires the pullers.

    The stage outlives a single drain — workers idle on the queue
    between drains — so a stream of drains pays thread startup once.
    The pullers are daemon threads: a process that exits without
    :meth:`stop` must not hang on threads blocked in ``queue.get``,
    and the :meth:`join` barrier already guarantees no admitted future
    is left unresolved by a completed drain.
    """

    def __init__(self, workers: int):
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._pullers = []
        self._stopping = False
        self._spawned = 0
        self._crashes: list[dict] = []
        try:
            for __ in range(workers):
                self._spawn_puller()
        except (RuntimeError, OSError):
            # Restricted interpreter: retire whatever did start and
            # let the caller fall back to inline verification.
            self.stop()
            raise

    def _spawn_puller(self) -> None:
        self._spawned += 1
        puller = threading.Thread(
            target=self._pull,
            name=f"repro-verify-{self._spawned - 1}",
            daemon=True,
        )
        puller.start()
        self._pullers.append(puller)

    def dispatch(self, job) -> None:
        """Enqueue one verify/conclude job (a no-arg callable)."""
        with self._lock:
            self._outstanding += 1
        self._queue.put(job)

    def _pull(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                job()  # routes its own failures into the future
            except BaseException as exc:
                # A job that escapes its own error routing (the jobs
                # catch Exception; a SystemExit/MemoryError-class crash
                # does not) has killed this puller.  Supervise: record
                # the crash, spawn a replacement *before* dying so a
                # mid-drain crash can never strand queued jobs, and let
                # the drain audit the respawn at its quiescent end.
                self._supervise_crash(exc)
                return
            finally:
                with self._idle:
                    self._outstanding -= 1
                    if self._outstanding == 0:
                        self._idle.notify_all()

    def _supervise_crash(self, exc: BaseException) -> None:
        me = threading.current_thread()
        with self._lock:
            self._crashes.append({
                "worker": me.name,
                "error": f"{type(exc).__name__}: {exc}",
            })
            if self._stopping:
                return
            try:
                self._spawn_puller()
            except (RuntimeError, OSError):  # pragma: no cover
                pass  # interpreter refuses threads: degrade silently
            try:
                self._pullers.remove(me)
            except ValueError:  # pragma: no cover - already retired
                pass

    def drain_crashes(self) -> list[dict]:
        """Pop recorded puller crashes (each one means a respawn)."""
        with self._lock:
            crashes, self._crashes = self._crashes, []
        return crashes

    def join(self) -> None:
        """Block until every dispatched job has completed."""
        with self._idle:
            while self._outstanding:
                self._idle.wait()

    def stop(self) -> None:
        """Retire the pullers (after a :meth:`join`; idempotent)."""
        with self._lock:
            self._stopping = True
            pullers, self._pullers = self._pullers, []
        for __ in pullers:
            self._queue.put(None)
        for puller in pullers:
            puller.join()
        with self._lock:
            self._stopping = False


class _DeadlineRunner:
    """Bounded-wait execution of solves that carry a deadline.

    Python cannot interrupt a compute-bound solve, so a deadline is
    enforced by *abandonment*: the solve runs on a reusable worker
    thread while the drain waits at most ``timeout`` seconds; on
    expiry the drain walks away (resolving the consultation to
    :class:`~repro.errors.DeadlineExceeded`) and the worker finishes
    in the background, discards its result into the already-resolved
    future, and rejoins the idle pool.  Submissions *without* a
    deadline never come here — they take the exact inline path the
    service always had, so the no-deadline stream stays bit-identical.

    Workers are recycled (checkout from an idle stack, spawn when
    empty, cap the idle stack at :data:`_MAX_IDLE`) so a deadline-heavy
    stream pays thread startup rarely, and an abandoned worker — still
    busy past its drain — simply is not in the idle stack until its
    task completes.
    """

    _MAX_IDLE = 4

    def __init__(self):
        self._lock = threading.Lock()
        self._idle: list[_DeadlineWorker] = []
        self._spawned = 0
        self._closed = False

    def execute(self, fn, timeout: float):
        """Run ``fn()`` with a wall-clock bound; (done, result, error).

        ``done`` False means the budget lapsed and the worker was
        abandoned (it keeps running; its result is discarded).
        """
        with self._lock:
            if self._closed:
                raise ProtocolError("deadline runner is closed")
            worker = self._idle.pop() if self._idle else None
            if worker is None:
                self._spawned += 1
                worker = _DeadlineWorker(self, self._spawned)
        return worker.run(fn, timeout)

    def _recycle(self, worker: "_DeadlineWorker") -> bool:
        """Return a finished worker to the idle stack; False = retire."""
        with self._lock:
            if self._closed or len(self._idle) >= self._MAX_IDLE:
                return False
            self._idle.append(worker)
            return True

    def close(self) -> None:
        """Retire the idle workers (abandoned ones die on completion)."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for worker in idle:
            worker.retire()


class _DeadlineTask:
    """One solve handed to a deadline worker.

    The ``claim`` lock arbitrates the timeout race atomically: exactly
    one side — the waiting drain (completion in time) or the worker
    (completion after abandonment) — owns the post-task handoff, so a
    solve finishing in the same instant the wait expires is still
    delivered, never dropped *and* recycled twice.
    """

    __slots__ = ("fn", "done", "result", "error", "claim", "abandoned")

    def __init__(self, fn):
        self.fn = fn
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.claim = threading.Lock()
        self.abandoned = False


class _DeadlineWorker:
    """One reusable thread of the :class:`_DeadlineRunner`."""

    def __init__(self, runner: _DeadlineRunner, index: int):
        self._runner = runner
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"repro-deadline-{index}",
            daemon=True,
        )
        self._thread.start()

    def run(self, fn, timeout: float):
        """(done, result, error); done False = abandoned past budget."""
        task = _DeadlineTask(fn)
        self._tasks.put(task)
        if not task.done.wait(timeout):
            with task.claim:
                if not task.done.is_set():
                    # The worker is still solving: walk away.  It will
                    # see ``abandoned`` and recycle itself on finish.
                    task.abandoned = True
                    return False, None, None
            # Finished in the same instant the wait expired — a result
            # we already paid for; deliver it.
        if not self._runner._recycle(self):
            self.retire()
        return True, task.result, task.error

    def retire(self) -> None:
        self._tasks.put(None)

    def _loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            try:
                task.result = task.fn()
            except BaseException as exc:
                task.error = exc
            with task.claim:
                task.done.set()
                abandoned = task.abandoned
            if abandoned:
                # Nobody is waiting; the result is discarded.  Rejoin
                # the idle pool (or retire when it is full/closed).
                if not self._runner._recycle(self):
                    return


class AuthorityService:
    """Async, future-based consultation facade over one authority.

    ``verify_workers`` sizes the off-path verification pool (``<= 1``
    verifies inline on the draining thread, which keeps the audit
    record order of the synchronous shims bit-identical to the
    pre-service code; ``> 1`` pipelines verification against the next
    solve).  ``solve_cache`` supplies a cross-run
    :class:`~repro.service.cache.SolveCache` (one is created when
    omitted); ``attach_cache=False`` leaves the inventors' caching
    exactly as constructed.

    ``cache_path`` makes the service's warm state persistent: a
    :class:`~repro.service.cache.SolveCache` bound to that file is
    created, warm-loaded immediately (a rejected — tampered, truncated
    or stale-schema — file starts the cache empty and appends a
    ``cache.load.rejected`` audit record), and saved back atomically on
    :meth:`close` / :meth:`aclose`.  Pass either ``cache_path`` or an
    explicit ``solve_cache``, not both — a caller-owned cache manages
    its own persistence.

    ``autotune`` arms the self-tuning loop: pass an
    :class:`~repro.service.autotune.AutotuneConfig` (or a
    pre-constructed
    :class:`~repro.service.autotune.AdaptiveController`) and the
    service samples its own drain telemetry, resizes the verify pool
    and the inventors' screening shards within the configured bounds,
    and audits every decision.  ``max_pending`` arms admission
    backpressure at a fixed high-water mark with the ``backpressure``
    policy (``"raise"`` refuses with
    :class:`~repro.errors.AdmissionError`; ``"block"`` waits — up to
    ``block_timeout`` seconds — until the pending count falls to half
    the mark; blocking needs some *other* thread draining, e.g. the
    load harness's).  An autotune config's own ``high_water`` arms the
    same mechanism; an explicit ``max_pending`` overrides it.

    ``default_deadline_ms`` arms per-request deadlines service-wide:
    every submission without an explicit ``deadline_ms`` inherits it.
    An expired submission resolves to
    :class:`~repro.errors.DeadlineExceeded` (audited
    ``service.deadline.exceeded``) — immediately when the deadline
    lapsed in the queue, or after the drain abandons a solve that
    outran its budget on a watchdog thread — and the drain moves on,
    so a wedged solve cannot head-of-line-block the service.
    Submissions without any deadline take the exact inline solve path
    the service always had.
    """

    def __init__(self, authority, solve_cache: SolveCache | None = None,
                 verify_workers: int = 1, attach_cache: bool = True,
                 cache_path=None,
                 autotune: AutotuneConfig | AdaptiveController | None = None,
                 max_pending: int | None = None,
                 backpressure: str = BACKPRESSURE_RAISE,
                 block_timeout: float | None = None,
                 default_deadline_ms: float | None = None):
        if verify_workers < 0:
            raise ProtocolError("verify_workers must be non-negative")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ProtocolError("default_deadline_ms must be positive")
        if solve_cache is not None and cache_path is not None:
            raise ProtocolError(
                "pass either solve_cache or cache_path, not both"
            )
        if backpressure not in (BACKPRESSURE_RAISE, BACKPRESSURE_BLOCK):
            raise ProtocolError(
                f"unknown backpressure policy {backpressure!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise ProtocolError("max_pending must be positive")
        self._authority = authority
        # The service persists (and audits) only a cache it created;
        # a caller-owned cache manages its own persistence.
        self._cache_owned = solve_cache is None
        if solve_cache is not None:
            self.cache = solve_cache
        else:
            self.cache = SolveCache(path=cache_path)
        self._verify_workers = verify_workers
        self._attach = attach_cache
        self._queue: deque[_Batch] = deque()
        self._admission_lock = threading.Lock()
        self._headroom = threading.Condition(self._admission_lock)
        self._pending_total = 0  # O(1) mirror of the queued submissions
        self._drain_lock = threading.Lock()
        self._verify_stage: _VerifyStage | None = None
        self._verify_pool_broken = False
        self._submission_counter = 0
        # Resolved-future counter: bumped by each future at resolution
        # (drain thread, verify puller, or deadline worker), so it gets
        # its own lock rather than riding the admission or drain lock.
        self._stats_lock = threading.Lock()
        self._completed = 0
        self._drain_listeners: list = []
        #: Service-wide wall-clock budget applied to submissions that
        #: carry no deadline of their own (None = unbounded).
        self.default_deadline_ms = default_deadline_ms
        self._deadline_runner: _DeadlineRunner | None = None
        # Failure telemetry (surfaced via failure_counters / GET /stats).
        self._deadlines_exceeded = 0
        self._verify_respawns = 0
        self._pool_rebuilds = 0
        self._pool_degradations = 0
        if isinstance(autotune, AdaptiveController):
            self.controller: AdaptiveController | None = autotune
            self._verify_workers = autotune.verify_workers
        elif autotune is not None:
            self.controller = AdaptiveController(
                autotune, verify_workers=max(1, verify_workers)
            )
            self._verify_workers = self.controller.verify_workers
        else:
            self.controller = None
        config = self.controller.config if self.controller else None
        if max_pending is not None:
            self._high_water: int | None = max_pending
            self._low_water = max_pending // 2
            self._backpressure = backpressure
            self._block_timeout = block_timeout
        elif config is not None and config.high_water is not None:
            self._high_water = config.high_water
            self._low_water = config.resolved_low_water()
            self._backpressure = config.backpressure
            self._block_timeout = config.block_timeout
        else:
            self._high_water = None
            self._low_water = None
            self._backpressure = backpressure
            self._block_timeout = block_timeout
        self._attach_cache()
        report = self.cache.last_load_report
        if cache_path is not None and report is not None and report.accepted:
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_CACHE_LOADED,
                **report.as_dict(),
            )
        self._flush_cache_rejections()

    @property
    def authority(self):
        """The underlying :class:`~repro.core.authority.RationalityAuthority`.

        Hosts above the service (the HTTP front-end) need the audit log
        and the registered parties without growing parallel plumbing.
        """
        return self._authority

    def flush_cache_rejections(self) -> None:
        """Publish queued cache load/serve rejections into the audit log.

        Normally the drain loop does this; a host that loads warm state
        outside a drain (journal replay at server startup) calls it
        directly so tampered frames are audited before the first drain.
        """
        self._flush_cache_rejections()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, agent_name: str, game_id: str,
               privacy: str = "open",
               deadline_ms: float | None = None) -> ConsultationFuture:
        """Admit one consultation; returns its future immediately.

        The request is validated eagerly (unknown agents and games are
        rejected here, not at drain time); the hard work happens when
        the queue drains.  Past the backpressure high-water mark the
        admission is refused or blocked per the configured policy.
        ``deadline_ms`` bounds this consultation's wall clock (falling
        back to the service default); past it the future resolves to
        :class:`~repro.errors.DeadlineExceeded`.
        """
        (future,) = self._admit(agent_name, [game_id], privacy,
                                batched=False, deadline_ms=deadline_ms)
        return future

    def submit_many(self, agent_name: str, game_ids, privacy: str = "open",
                    deadline_ms: float | None = None,
                    ) -> tuple[ConsultationFuture, ...]:
        """Admit a stream of consultations as one atomic batch.

        The batch drains exactly like :meth:`RationalityAuthority
        .consult_many` executed: grouped by owning inventor, one
        ``consultation.batch`` audit record and one
        ``prepare_games`` pre-solve per group, then the individual
        sessions in submission order.  Backpressure treats the batch
        atomically: it is admitted whole or refused whole.
        ``deadline_ms`` applies per submission, not to the batch as a
        whole.
        """
        if not game_ids:
            return ()
        return self._admit(agent_name, list(game_ids), privacy,
                           batched=True, deadline_ms=deadline_ms)

    def _admit(self, agent_name: str, game_ids, privacy: str,
               batched: bool,
               deadline_ms: float | None = None,
               ) -> tuple[ConsultationFuture, ...]:
        authority = self._authority
        authority.agent(agent_name)  # raises on unknown agents
        for game_id in game_ids:
            authority.inventor_of(game_id)  # raises on unknown games
        if deadline_ms is not None and deadline_ms <= 0:
            raise ProtocolError("deadline_ms must be positive")
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        deadline = (
            None if deadline_ms is None
            else time.monotonic() + deadline_ms / 1000.0
        )
        batch = _Batch(batched=batched)
        shed = None
        blocked = None
        with self._headroom:
            if (
                self._high_water is not None
                and self._pending_total + len(game_ids) > self._high_water
            ):
                if self._backpressure == BACKPRESSURE_RAISE:
                    shed = self._backpressure_details(
                        "rejected", agent_name, game_ids
                    )
                else:
                    blocked = self._await_headroom(agent_name, game_ids)
                    if blocked is None:  # timed out
                        shed = self._backpressure_details(
                            "timed-out", agent_name, game_ids
                        )
            if shed is None:
                depth = self._pending_total
                futures = []
                for game_id in game_ids:
                    self._submission_counter += 1
                    future = ConsultationFuture(
                        submission_id=self._submission_counter,
                        agent=agent_name,
                        game_id=game_id,
                        service=self,
                        queue_depth=depth + len(futures),
                        deadline_ms=deadline_ms,
                    )
                    batch.submissions.append(
                        _Submission(agent_name, game_id, privacy, future,
                                    deadline=deadline)
                    )
                    futures.append(future)
                self._queue.append(batch)
                self._pending_total += len(batch.submissions)
        # Audit outside the admission lock: the record is bookkeeping,
        # not part of the atomic admission decision.
        if shed is not None:
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_BACKPRESSURE,
                **shed,
            )
            raise AdmissionError(
                f"admission queue at high-water mark "
                f"({shed['pending']}/{self._high_water} pending): "
                f"{shed['action']}"
            )
        if blocked is not None and blocked > 0.0:
            details = self._backpressure_details(
                "blocked", agent_name, game_ids
            )
            details["waited_ms"] = blocked * 1000.0
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_BACKPRESSURE,
                **details,
            )
        return tuple(futures)

    def _backpressure_details(self, action: str, agent_name: str,
                              game_ids) -> dict:
        return {
            "action": action,
            "agent": agent_name,
            "requested": len(game_ids),
            "pending": self._pending_total,
            "high_water": self._high_water,
            "policy": self._backpressure,
        }

    def _await_headroom(self, agent_name: str, game_ids) -> float | None:
        """Block (holding the condition) until the queue falls to the
        low-water mark; returns seconds waited, or ``None`` on timeout.

        Only another thread's drain can create headroom, so blocking
        admission is for multi-threaded hosts (the load harness, a
        server front-end) — a single-threaded submit-then-wait caller
        should use the ``"raise"`` policy or a ``block_timeout``.
        """
        release = self._low_water if self._low_water is not None else 0
        deadline = (
            None if self._block_timeout is None
            else time.monotonic() + self._block_timeout
        )
        started = time.monotonic()
        while self._pending_total > release:
            if deadline is None:
                self._headroom.wait()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._headroom.wait(remaining):
                    if self._pending_total <= release:
                        break
                    return None
        return time.monotonic() - started

    def _note_drained_submissions(self, count: int) -> None:
        """O(1) pending bookkeeping for a batch leaving the queue."""
        self._pending_total -= count  # repro: allow[R5] -- both drain sites call this holding _headroom (the admission lock)
        if (
            self._high_water is None
            or self._pending_total <= (self._low_water or 0)
        ):
            self._headroom.notify_all()

    @property
    def pending_count(self) -> int:
        """Submissions admitted but not yet drained (O(1): a running
        counter, not a queue scan)."""
        with self._admission_lock:
            return self._pending_total

    @property
    def completed_count(self) -> int:
        """Futures resolved so far (advice, failure, or deadline).

        Counted at resolution time — the moment a caller can observe
        the result — not at the end of the drain that produced it, so
        ``GET /stats`` issued right after a response already sees it.
        """
        with self._stats_lock:
            return self._completed

    def _note_completed(self) -> None:
        with self._stats_lock:
            self._completed += 1

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def drain(self, max_batches: int | None = None) -> int:
        """Process the admission queue to empty; returns completions.

        One drainer runs at a time; concurrent callers block on the
        lock and, once inside, drain whatever was admitted meanwhile
        (usually nothing — their futures were resolved by the first
        drainer).  The verify stage is joined before the drain returns,
        so every future admitted before the call is resolved afterwards.

        ``max_batches`` bounds how many admission batches this call
        pops (``None`` drains to empty).  An unbounded drain keeps
        popping batches admitted *while it runs*, so under continuous
        load one "drain" can stretch over many submissions — fine for
        throughput, but it stretches the write-behind flush interval
        with it.  The HTTP server's pump drains one batch at a time so
        a crash can lose at most one batch of journal frames.
        """
        with self._drain_lock:
            self._attach_cache()  # pick up inventors registered since
            depth_at_start = self.pending_count
            if depth_at_start == 0:
                return 0
            snapshots = [
                (cache, cache.snapshot()) for cache in self._active_caches()
            ]
            stage = self._verification_stage()
            processed: list[ConsultationFuture] = []
            popped = 0
            try:
                while max_batches is None or popped < max_batches:
                    with self._headroom:
                        if not self._queue:
                            break
                        batch = self._queue.popleft()
                        self._note_drained_submissions(len(batch.submissions))
                    popped += 1
                    self._process_batch(batch, stage, processed)
                if stage is not None:
                    stage.join()  # per-drain barrier of the verify stage
            except BaseException as exc:
                # KeyboardInterrupt / SystemExit mid-solve: abort the
                # drain immediately (the synchronous shims propagate it
                # right away, as they always did), but fail every
                # not-yet-resolved future first so nothing waits forever
                # on work that will never run.
                self._abort_outstanding(exc, processed)
                raise
            # Completions are counted by the futures themselves as they
            # resolve (see _note_completed) — nothing to tally here.
            self._flush_cache_rejections()
            self._flush_failure_events(stage)
            latencies = [f.latency_ms for f in processed if f.latency_ms is not None]
            outcomes = [
                outcome
                for outcome in (f.peek_outcome() for f in processed)
                if outcome is not None
            ]
            verify_times = [
                o.advice.verify_ms for o in outcomes
                if o.advice.verify_ms >= 0.0
            ]
            summary = latency_summary(latencies)
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_SERVICE_DRAINED,
                submissions=len(processed),
                queue_depth=depth_at_start,
                verify_workers=self._effective_verify_workers(),
                latency_p50_ms=summary["p50"],
                latency_p95_ms=summary["p95"],
                latency_p99_ms=summary["p99"],
                max_latency_ms=summary["max"],
                max_verify_ms=max(verify_times, default=0.0),
                **self._cache_deltas(snapshots),
            )
            self._autotune_observe(depth_at_start, outcomes, verify_times)
            self._notify_drained(len(processed), depth_at_start)
            return len(processed)

    # ------------------------------------------------------------------
    # Drain listeners (the write-behind persistence seam)
    # ------------------------------------------------------------------

    def add_drain_listener(self, listener) -> None:
        """Call ``listener(summary)`` at the end of every non-empty drain.

        The listener runs on the draining thread at a quiescent point —
        the verify stage is joined, every admitted future resolved, the
        autotuner applied — with a small summary dict (``submissions``,
        ``queue_depth``).  This is the hook a write-behind persister
        uses to flush journal frames every N drains and cut periodic
        snapshots without racing in-flight solves: all cache writes
        happen *during* drains, so at this point the dirty queue is
        stable.  A raising listener propagates (durability failures —
        a full disk — must not be silent).
        """
        self._drain_listeners.append(listener)

    def remove_drain_listener(self, listener) -> None:
        """Detach a drain listener (no-op when not attached)."""
        try:
            self._drain_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_drained(self, submissions: int, queue_depth: int) -> None:
        summary = {"submissions": submissions, "queue_depth": queue_depth}
        for listener in tuple(self._drain_listeners):
            listener(summary)

    def _abort_outstanding(self, exc: BaseException, processed: list) -> None:
        """Fail every unresolved future this drain was responsible for."""
        for future in processed:
            future._fail(exc)
        while True:
            with self._headroom:
                if not self._queue:
                    return
                batch = self._queue.popleft()
                self._note_drained_submissions(len(batch.submissions))
            for submission in batch.submissions:
                submission.future._fail(exc)

    def _active_caches(self) -> list:
        """Every solve cache this drain's solves can actually touch.

        Usually just :attr:`cache`, but an inventor constructed with —
        or previously attached to — a different cache keeps it, and the
        drain telemetry must count *that* cache's hits, not silently
        report zeros from an unused one.
        """
        caches = {id(self.cache): self.cache}
        for inventor in self._authority.inventors:
            cache = getattr(inventor, "solve_cache", None)
            if cache is not None:
                caches.setdefault(id(cache), cache)
        return list(caches.values())

    def _flush_cache_rejections(self) -> None:
        """Turn queued cache load/serve rejections into audit records.

        Covers every active cache (an inventor may carry its own
        persistent cache): each detail dict a cache refused to serve —
        a whole rejected file or a loaded entry that failed the Lemma-1
        gate at first serve — becomes one ``cache.load.rejected``
        record, so tampered warm state is visible in the audit trail,
        not just absent from the hit counters.
        """
        for cache in self._active_caches():
            drain = getattr(cache, "drain_rejections", None)
            if drain is None:
                continue
            for details in drain():
                self._authority.audit.record(
                    "-", self._authority.AUTHORITY_NAME,
                    EVENT_CACHE_LOAD_REJECTED, **details,
                )

    def _flush_failure_events(self, stage: _VerifyStage | None) -> None:
        """Audit supervision events collected during this drain.

        Runs at the drain's quiescent end: verify-puller crashes (each
        one already respawned a replacement mid-drain) become
        ``service.verify.respawned`` records, and the inventors'
        screening-executor events — a mid-run pool rebuilt on its one
        fresh chance, or degraded to the serial path — become
        ``service.pool.rebuilt`` / ``service.pool.degraded`` records.
        """
        audit = self._authority.audit
        name = self._authority.AUTHORITY_NAME
        if stage is not None:
            for crash in stage.drain_crashes():
                self._verify_respawns += 1
                audit.record("-", name, EVENT_VERIFY_RESPAWNED, **crash)
        for inventor in self._authority.inventors:
            drain = getattr(inventor, "drain_pool_events", None)
            if drain is None:
                continue
            for event in drain():
                details = dict(event)
                kind = details.pop("kind", "degraded")
                details.setdefault("inventor", inventor.name)
                if kind == "rebuilt":
                    self._pool_rebuilds += 1
                    audit.record("-", name, EVENT_POOL_REBUILT, **details)
                else:
                    self._pool_degradations += 1
                    audit.record("-", name, EVENT_POOL_DEGRADED, **details)

    def failure_counters(self) -> dict:
        """Lifetime supervision counters (the ``/stats`` failure block)."""
        return {
            "deadlines_exceeded": self._deadlines_exceeded,
            "verify_respawns": self._verify_respawns,
            "pool_rebuilds": self._pool_rebuilds,
            "pool_degradations": self._pool_degradations,
        }

    def _record_callback_failure(self, future, exc: BaseException) -> None:
        """Audit a raising done-callback (see ConsultationFuture)."""
        self._authority.audit.record(
            "-", self._authority.AUTHORITY_NAME, EVENT_CALLBACK_FAILED,
            submission_id=future.submission_id,
            game_id=future.game_id,
            agent=future.agent,
            error=repr(exc),
        )

    @staticmethod
    def _cache_deltas(snapshots) -> dict:
        """Aggregate hit/warm/miss deltas across the active caches."""
        totals = {"cache_hits": 0, "cache_warm_hits": 0, "cache_misses": 0}
        for cache, snapshot in snapshots:
            delta = cache.delta_since(snapshot)
            for key in totals:
                totals[key] += delta[key]
        lookups = sum(totals.values())
        totals["cache_hit_rate"] = (
            totals["cache_hits"] / lookups if lookups else 0.0
        )
        return totals

    # ------------------------------------------------------------------
    # The drain pipeline: prepare -> solve -> verify/conclude
    # ------------------------------------------------------------------

    def _process_batch(self, batch: _Batch, stage: _VerifyStage | None,
                       processed: list) -> None:
        """Run one admitted batch through the pipeline stages.

        Stage 0 (batched admissions only): the per-inventor
        ``prepare_games`` pre-solve.  Stage 1, on the draining thread:
        open the session and request advice — the inventor's cache
        lookup and (on a miss) its screening/search happen here.  Stage
        2: verify/conclude — dispatched to the verify stage's queue
        when one exists, run inline otherwise.  The stages never
        reorder work within a submission, and certification is
        identical code on both paths, so pipelined and serial drains
        produce bit-identical outcomes.
        """
        if batch.batched and not self._stage_prepare(batch, processed):
            return
        for submission in batch.submissions:
            future = submission.future
            processed.append(future)
            if self._expired(submission):
                self._deadline_fail(submission, phase="queued")
                continue
            try:
                if submission.deadline is None:
                    session = self._stage_solve(submission)
                else:
                    session = self._stage_solve_deadlined(submission)
                    if session is None:  # abandoned past its budget
                        continue
            except Exception as exc:
                future._fail(exc)
                continue
            if self._expired(submission):
                # Solved, but past the promise: the caller has already
                # been told 504-land — do not spend verify time on it.
                self._deadline_fail(submission, phase="solved")
                continue
            if stage is None:
                self._verify_and_conclude(session, future)
            else:
                stage.dispatch(
                    lambda s=session, f=future: self._verify_and_conclude(s, f)
                )

    @staticmethod
    def _expired(submission: _Submission) -> bool:
        return (
            submission.deadline is not None
            and time.monotonic() >= submission.deadline
        )

    def _deadline_fail(self, submission: _Submission, phase: str) -> None:
        """Resolve an expired submission to DeadlineExceeded; audit."""
        future = submission.future
        budget = future.deadline_ms
        future._fail(DeadlineExceeded(
            f"consultation for {submission.game_id!r} exceeded its "
            f"{budget:g} ms deadline ({phase})",
            deadline_ms=budget,
        ))
        self._deadlines_exceeded += 1
        self._authority.audit.record(
            "-", self._authority.AUTHORITY_NAME, EVENT_DEADLINE_EXCEEDED,
            game_id=submission.game_id,
            agent=submission.agent,
            deadline_ms=budget,
            phase=phase,
        )

    def _stage_solve_deadlined(self, submission: _Submission):
        """Stage 1 under a wall-clock budget (watchdog thread).

        Returns the solved session, ``None`` when the solve outran its
        budget and was abandoned (the future is already resolved to
        :class:`~repro.errors.DeadlineExceeded`), or raises what the
        solve raised.  The abandoned solve keeps running on its worker
        thread and discards its result into the resolved future.
        """
        remaining = submission.deadline - time.monotonic()
        if remaining <= 0:
            self._deadline_fail(submission, phase="queued")
            return None
        if self._deadline_runner is None:
            self._deadline_runner = _DeadlineRunner()
        done, session, error = self._deadline_runner.execute(
            lambda: self._stage_solve(submission), remaining
        )
        if not done:
            self._deadline_fail(submission, phase="solve")
            return None
        if error is not None:
            raise error
        return session

    def _stage_prepare(self, batch: _Batch, processed: list) -> bool:
        """Stage 0: the batched pre-solve (``consult_many`` semantics).

        Returns False — with every future in the batch failed — when
        the pre-solve raised; other batches in the queue are
        unaffected.  (BaseException — a caller's Ctrl-C — aborts the
        whole drain instead, exactly as before.)
        """
        authority = self._authority
        by_inventor: dict[str, list[str]] = {}
        for submission in batch.submissions:
            inventor = authority.inventor_of(submission.game_id)
            by_inventor.setdefault(inventor.name, []).append(
                submission.game_id
            )
        agent_name = batch.submissions[0].agent
        try:
            for inventor_name, ids in by_inventor.items():
                inventor = authority.inventor_named(inventor_name)
                distinct: dict[str, Game] = {}
                for game_id in ids:
                    distinct.setdefault(game_id, authority.game(game_id))
                authority.audit.record(
                    "-", authority.AUTHORITY_NAME, EVENT_BATCH_CONSULTATION,
                    inventor=inventor_name,
                    games=sorted(distinct),
                    agent=agent_name,
                )
                inventor.prepare_games(list(distinct.items()))
        except Exception as exc:
            for submission in batch.submissions:
                submission.future._fail(exc)
                processed.append(submission.future)
            return False
        return True

    def _stage_solve(self, submission: _Submission) -> ConsultationSession:
        """Stage 1: session open + advice (cache lookup / search)."""
        faults.check("solve")
        authority = self._authority
        session = authority.open_session(
            submission.agent, submission.game_id
        )
        inventor = authority.inventor_of(submission.game_id)
        session.request_advice(inventor, privacy=submission.privacy)
        return session

    def _verify_and_conclude(self, session: ConsultationSession,
                             future: ConsultationFuture) -> None:
        """Stage 2: verify, conclude, resolve, audit."""
        outcome: SessionOutcome | None = None
        try:
            faults.check("verify.conclude")
            session.verify()
            outcome = session.conclude()
        except Exception as exc:
            future._fail(exc)
        else:
            future._resolve(outcome)
        details = {
            "game_id": future.game_id,
            "agent": future.agent,
            "queue_depth": future.queue_depth,
            "latency_ms": future.latency_ms,
        }
        if outcome is not None:
            details["cache"] = outcome.advice.cache
            details["accepted"] = outcome.majority.accepted
            details["verify_ms"] = outcome.advice.verify_ms
        else:
            details["failed"] = True
        self._authority.audit.record(
            session.session_id, self._authority.AUTHORITY_NAME,
            EVENT_SERVICE_COMPLETED, **details,
        )

    # ------------------------------------------------------------------
    # The off-path verification stage
    # ------------------------------------------------------------------

    def _effective_verify_workers(self) -> int:
        return 1 if self._verification_stage() is None else self._verify_workers

    def _verification_stage(self) -> _VerifyStage | None:
        if self._verify_workers <= 1 or pools_disabled() or self._verify_pool_broken:
            return None
        if self._verify_stage is None:
            try:
                self._verify_stage = _VerifyStage(self._verify_workers)
            except (ImportError, NotImplementedError, OSError,
                    PermissionError, RuntimeError):
                # Restricted interpreter without threads: verify inline.
                self._verify_pool_broken = True
                return None
        return self._verify_stage

    def _shutdown_verify_stage(self) -> None:
        """Retire the stage and its pullers (quiescent points only)."""
        stage = self._verify_stage
        self._verify_stage = None
        if stage is not None:
            stage.stop()

    # ------------------------------------------------------------------
    # The adaptive controller
    # ------------------------------------------------------------------

    def _autotune_observe(self, depth_at_start: int, outcomes,
                          verify_times) -> None:
        """Feed the controller one drain's telemetry; apply its resizes.

        Runs at the end of the drain, while the verify stage is
        quiescent, so a pool resize never races in-flight jobs.  Every
        decision is recorded as ``service.autotune.resized`` *before*
        it is applied — the audit trail is the controller's contract
        surface, and tests replay it deterministically.
        """
        if self.controller is None or not outcomes:
            return
        solve_times = [
            o.advice.solve_ms for o in outcomes if o.advice.solve_ms >= 0.0
        ]
        per_inventor: dict[str, list[float]] = {}
        for outcome in outcomes:
            if outcome.advice.solve_ms >= 0.0:
                per_inventor.setdefault(
                    outcome.advice.inventor, []
                ).append(outcome.advice.solve_ms)
        sample = DrainSample(
            submissions=len(outcomes),
            queue_depth=depth_at_start,
            solve_ms=_mean(solve_times),
            verify_ms=_mean(verify_times),
            inventor_solve_ms={
                name: _mean(times) for name, times in per_inventor.items()
            },
        )
        for decision in self.controller.observe(sample):
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_AUTOTUNE_RESIZED,
                **decision.as_audit_details(),
            )
            if decision.knob == "verify_workers":
                self._verify_workers = decision.target
                self._shutdown_verify_stage()  # recreated lazily, resized
            elif decision.knob == "screening_workers":
                inventor = self._authority.inventor_named(decision.inventor)
                inventor.set_screening_workers(decision.target)

    # ------------------------------------------------------------------
    # Cache attachment
    # ------------------------------------------------------------------

    def _attach_cache(self) -> None:
        if not self._attach:
            return
        for inventor in self._authority.inventors:
            inventor.attach_solve_cache(self.cache)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain outstanding work and release service-held resources.

        Idempotent, and — like the authority's own ``close`` — not
        final: the service stays usable and recreates its verification
        stage lazily on the next concurrent drain.  Inventor-held pools
        belong to the authority's lifecycle, not the service's.  A
        path-bound cache is persisted here (atomic replace), so a
        ``close``\\ d — or context-managed — service never forgets its
        warm state.
        """
        self.drain()
        self._shutdown_verify_stage()
        runner, self._deadline_runner = self._deadline_runner, None
        if runner is not None:
            runner.close()
        if self._cache_owned and self.cache.path is not None \
                and self.cache.autosave:
            entries = self.cache.save()
            self._authority.audit.record(
                "-", self._authority.AUTHORITY_NAME, EVENT_CACHE_SAVED,
                path=self.cache.path, entries=entries,
            )

    def __enter__(self) -> "AuthorityService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # asyncio wrappers — same core, awaitable surface
    # ------------------------------------------------------------------

    async def async_consult(self, agent_name: str, game_id: str,
                            privacy: str = "open") -> SessionOutcome:
        """Awaitable consult: admit, drain off-loop, await the outcome.

        Draining runs in the event loop's default thread pool, so many
        concurrent ``async_consult`` tasks coalesce: the first drainer
        pumps everyone's submissions while the rest await resolved
        futures.
        """
        future = self.submit(agent_name, game_id, privacy=privacy)
        return await self._await_future(future)

    async def async_consult_many(self, agent_name: str, game_ids,
                                 privacy: str = "open",
                                 ) -> tuple[SessionOutcome, ...]:
        """Awaitable batch consult (one atomic batch, like submit_many)."""
        futures = self.submit_many(agent_name, game_ids, privacy=privacy)
        if not futures:
            return ()
        await self.async_drain()
        return tuple(future.result() for future in futures)

    async def async_drain(self) -> int:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.drain)

    async def _await_future(self, future: ConsultationFuture) -> SessionOutcome:
        await self.async_drain()
        return future.result()

    async def aclose(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    async def __aenter__(self) -> "AuthorityService":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.aclose()
        return False


def _mean(values) -> float:
    """Mean of a telemetry sample; -1.0 (unobserved) when empty."""
    return sum(values) / len(values) if values else -1.0
