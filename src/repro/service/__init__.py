"""The consultation service layer: queue → pool → certify → cache.

An async, future-based surface over the core authority
(:class:`AuthorityService`), the cross-run fingerprint-keyed
:class:`SolveCache` beneath it — persistent across process lifetimes
through the exact, tamper-rejecting on-disk format in
:mod:`repro.service.persistence` — and the future-based burst adapter
for the online parallel-links game.  The synchronous
``RationalityAuthority.consult`` / ``consult_many`` calls are thin
shims over this package.

Two operational companions close the loop on load:
:mod:`repro.service.load` (the open-loop harness measuring
latency-under-load and saturation) and :mod:`repro.service.autotune`
(the deterministic hysteresis controller that sizes the verify pool
and screening shards from the service's own drain telemetry).
"""

from repro.service.autotune import (
    AdaptiveController,
    AutotuneConfig,
    DrainSample,
    Resize,
)
from repro.service.cache import CacheStats, SolveCache, game_fingerprint
from repro.service.faults import (
    FaultPlan,
    FaultSpec,
    arm_fault_plan,
    armed_faults,
    disarm_fault_plan,
    parse_fault_plan,
)
from repro.service.futures import ConsultationFuture
from repro.service.load import (
    ArrivalSchedule,
    LoadReport,
    SaturationResult,
    StreamEntry,
    bursty_arrivals,
    find_saturation,
    mixed_game_stream,
    poisson_arrivals,
    publish_stream,
    run_load,
    uniform_arrivals,
)
from repro.service.online import BurstLinkAdviser, VerifiedLinkAdvice
from repro.service.persistence import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    CacheLoadReport,
    CacheState,
    read_cache_file,
    write_cache_file,
)
from repro.service.service import AuthorityService

__all__ = [
    "AuthorityService",
    "ConsultationFuture",
    "FaultPlan",
    "FaultSpec",
    "arm_fault_plan",
    "armed_faults",
    "disarm_fault_plan",
    "parse_fault_plan",
    "SolveCache",
    "CacheStats",
    "game_fingerprint",
    "BurstLinkAdviser",
    "VerifiedLinkAdvice",
    "CacheLoadReport",
    "CacheState",
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "read_cache_file",
    "write_cache_file",
    "AdaptiveController",
    "AutotuneConfig",
    "DrainSample",
    "Resize",
    "ArrivalSchedule",
    "LoadReport",
    "SaturationResult",
    "StreamEntry",
    "bursty_arrivals",
    "find_saturation",
    "mixed_game_stream",
    "poisson_arrivals",
    "publish_stream",
    "run_load",
    "uniform_arrivals",
]
