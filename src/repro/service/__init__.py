"""The consultation service layer: queue → pool → certify → cache.

An async, future-based surface over the core authority
(:class:`AuthorityService`), the cross-run fingerprint-keyed
:class:`SolveCache` beneath it — persistent across process lifetimes
through the exact, tamper-rejecting on-disk format in
:mod:`repro.service.persistence` — and the future-based burst adapter
for the online parallel-links game.  The synchronous
``RationalityAuthority.consult`` / ``consult_many`` calls are thin
shims over this package.
"""

from repro.service.cache import CacheStats, SolveCache, game_fingerprint
from repro.service.futures import ConsultationFuture
from repro.service.online import BurstLinkAdviser, VerifiedLinkAdvice
from repro.service.persistence import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    CacheLoadReport,
    CacheState,
    read_cache_file,
    write_cache_file,
)
from repro.service.service import AuthorityService

__all__ = [
    "AuthorityService",
    "ConsultationFuture",
    "SolveCache",
    "CacheStats",
    "game_fingerprint",
    "BurstLinkAdviser",
    "VerifiedLinkAdvice",
    "CacheLoadReport",
    "CacheState",
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "read_cache_file",
    "write_cache_file",
]
