"""Open-loop load harness for the consultation service.

Every committed benchmark before this module measured one synchronous
stream: submit, drain, divide.  A production claim needs the other
axis — *latency under offered load* — which only an **open-loop**
generator measures: arrivals follow their own clock (Poisson, bursty),
independent of how fast the service completes, so queueing delay shows
up in the numbers instead of silently throttling the workload.

The harness composes three orthogonal pieces:

* **arrival schedules** — :func:`poisson_arrivals`,
  :func:`bursty_arrivals`, :func:`uniform_arrivals`: seeded,
  deterministic offset sequences (seconds from harness start);
* **game streams** — :func:`mixed_game_stream`: a seeded mix of cold
  games (fresh payoffs), exact repeats (cache hits) and near-repeats
  (same shape, one perturbed cell — warm support hints), built on
  :mod:`repro.games.generators`;
* **the driver** — :func:`run_load`: a submitter thread admits per the
  schedule while the calling thread pumps ``service.drain()``;
  per-consultation latency comes straight off the existing
  :class:`~repro.service.futures.ConsultationFuture` telemetry
  (admission to resolution, queue wait included).  On a pool-less
  interpreter (``REPRO_FORCE_SERIAL``, or threads unavailable) the
  driver degrades to a paced inline loop and says so in the report's
  ``mode`` — open-loop evidence needs a second thread; the fallback
  keeps the harness *runnable* everywhere.

:func:`find_saturation` walks an offered-rate ladder and reports the
last sustained rate and the first rate whose p99 exceeds the bound —
the saturation point the benchmarks track as ``BENCH_load_*.json``.

Soundness is untouched by any of this: the harness drives the same
admission/drain/certify pipeline as every other caller, and reports
shed (backpressured) submissions separately from completed ones.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.stats import latency_summary
from repro.errors import AdmissionError, GameError
from repro.equilibria.executors import pools_disabled
from repro.games.bimatrix import BimatrixGame
from repro.games.generators import random_bimatrix
from repro.rng import make_rng

#: Stream-entry kinds (see mixed_game_stream).
KIND_COLD = "cold"
KIND_REPEAT = "repeat"
KIND_NEAR = "near"


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArrivalSchedule:
    """A deterministic sequence of arrival offsets (seconds from start)."""

    offsets: tuple[float, ...]
    label: str

    def __post_init__(self):
        if any(b < a for a, b in zip(self.offsets, self.offsets[1:])):
            raise GameError("arrival offsets must be non-decreasing")
        if any(offset < 0 for offset in self.offsets):
            raise GameError("arrival offsets must be non-negative")

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def span_s(self) -> float:
        """Seconds from the first arrival to the last."""
        return self.offsets[-1] - self.offsets[0] if self.offsets else 0.0

    @property
    def offered_rate(self) -> float:
        """Arrivals per second over the schedule's span."""
        if len(self.offsets) < 2 or self.span_s <= 0.0:
            return float("inf")
        return (len(self.offsets) - 1) / self.span_s

    def scaled(self, time_scale: float) -> "ArrivalSchedule":
        """The same schedule with every offset multiplied by the factor."""
        if time_scale <= 0:
            raise GameError("time_scale must be positive")
        return ArrivalSchedule(
            offsets=tuple(offset * time_scale for offset in self.offsets),
            label=f"{self.label}*{time_scale:g}",
        )


def poisson_arrivals(rate: float, count: int, seed: int) -> ArrivalSchedule:
    """Poisson arrivals at ``rate`` per second (exponential gaps)."""
    if rate <= 0:
        raise GameError("arrival rate must be positive")
    if count < 1:
        raise GameError("need at least one arrival")
    rng = make_rng(seed, f"poisson:{rate}:{count}")
    offsets = []
    now = 0.0
    for __ in range(count):
        offsets.append(now)
        now += rng.expovariate(rate)
    return ArrivalSchedule(
        offsets=tuple(offsets), label=f"poisson@{rate:g}/s"
    )


def bursty_arrivals(burst_size: int, bursts: int, gap_s: float,
                    within_s: float = 0.0, seed: int = 0) -> ArrivalSchedule:
    """Bursts of ``burst_size`` arrivals every ``gap_s`` seconds.

    ``within_s > 0`` spreads each burst's arrivals uniformly (seeded)
    across that window instead of landing them on one instant — the
    queue still spikes, but admission timestamps differ, which is what
    exercises backpressure and the controller's depth signal.
    """
    if burst_size < 1 or bursts < 1:
        raise GameError("need at least one arrival per burst and one burst")
    if gap_s < 0 or within_s < 0:
        raise GameError("burst spacing must be non-negative")
    rng = make_rng(seed, f"bursty:{burst_size}x{bursts}")
    offsets = []
    for burst in range(bursts):
        base = burst * gap_s
        jitters = sorted(
            rng.uniform(0.0, within_s) if within_s > 0 else 0.0
            for __ in range(burst_size)
        )
        offsets.extend(base + jitter for jitter in jitters)
    return ArrivalSchedule(
        offsets=tuple(offsets),
        label=f"bursty:{burst_size}x{bursts}@{gap_s:g}s",
    )


def uniform_arrivals(rate: float, count: int) -> ArrivalSchedule:
    """Evenly spaced arrivals at ``rate`` per second (deterministic)."""
    if rate <= 0:
        raise GameError("arrival rate must be positive")
    if count < 1:
        raise GameError("need at least one arrival")
    return ArrivalSchedule(
        offsets=tuple(i / rate for i in range(count)),
        label=f"uniform@{rate:g}/s",
    )


# ----------------------------------------------------------------------
# Game streams
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StreamEntry:
    """One game in a load stream: id, payoffs, and how it relates to
    earlier entries (``base_id`` names the cold game a repeat copies or
    a near-repeat perturbs)."""

    game_id: str
    game: BimatrixGame
    kind: str
    base_id: str | None = None


def mixed_game_stream(count: int, size: int = 4, seed: int = 0,
                      repeat_fraction: float = 0.4,
                      near_fraction: float = 0.2,
                      prefix: str = "load") -> list[StreamEntry]:
    """A seeded mixed cold/repeat/near-repeat game stream.

    * ``cold`` — fresh random payoffs (a cache miss and a full search);
    * ``repeat`` — an earlier cold game's exact payoff bytes under a
      new id (a fingerprint cache hit: zero search);
    * ``near`` — an earlier cold game with a single payoff cell bumped
      (same shape: the cache's support hints usually warm-start it).

    The kind sequence and every payoff are functions of ``seed`` alone.
    The first entry is always cold; fractions are of the remaining
    ``count - 1`` draws.
    """
    if count < 1:
        raise GameError("need at least one game")
    if repeat_fraction < 0 or near_fraction < 0 \
            or repeat_fraction + near_fraction > 1:
        raise GameError("stream fractions must be a sub-probability")
    rng = make_rng(seed, f"load-stream:{count}x{size}")
    stream: list[StreamEntry] = []
    cold: list[StreamEntry] = []

    def fresh(index: int) -> StreamEntry:
        game = random_bimatrix(
            size, size, seed=rng.randrange(1 << 30),
            name=f"{prefix}-cold-{index}",
        )
        entry = StreamEntry(f"{prefix}{index}", game, KIND_COLD)
        cold.append(entry)
        return entry

    for index in range(count):
        draw = rng.random() if index else 1.0
        if draw < repeat_fraction and cold:
            base = cold[rng.randrange(len(cold))]
            entry = StreamEntry(
                f"{prefix}{index}",
                BimatrixGame(base.game.row_matrix, base.game.column_matrix),
                KIND_REPEAT,
                base_id=base.game_id,
            )
        elif draw < repeat_fraction + near_fraction and cold:
            base = cold[rng.randrange(len(cold))]
            a = [list(row) for row in base.game.row_matrix]
            a[rng.randrange(size)][rng.randrange(size)] += 1
            entry = StreamEntry(
                f"{prefix}{index}",
                BimatrixGame(a, base.game.column_matrix),
                KIND_NEAR,
                base_id=base.game_id,
            )
        else:
            entry = fresh(index)
        stream.append(entry)
    return stream


def publish_stream(authority, inventor_name: str,
                   stream: Sequence[StreamEntry]) -> None:
    """Publish every stream entry under its inventor (setup, not load)."""
    for entry in stream:
        authority.publish_game(inventor_name, entry.game_id, entry.game)


# ----------------------------------------------------------------------
# The open-loop driver
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoadReport:
    """What one load run measured.

    ``latency_ms`` carries the p50/p95/p99/max of completed
    consultations' end-to-end latencies; ``shed`` counts submissions
    the service refused under backpressure (they are *offered* load,
    so they count toward ``offered_rate`` but not ``throughput``).
    ``mode`` is ``"open-loop"`` (submitter thread + draining caller)
    or ``"inline"`` (the pool-less paced fallback).
    """

    label: str
    mode: str
    submitted: int
    completed: int
    failed: int
    shed: int
    duration_s: float
    offered_rate: float
    throughput: float
    latency_ms: dict = field(default_factory=dict)
    cache_counts: dict = field(default_factory=dict)
    kind_counts: dict = field(default_factory=dict)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms.get("p99", 0.0)

    def saturated(self, p99_bound_ms: float,
                  min_throughput_ratio: float = 0.75) -> bool:
        """Did the service fail to keep up with this run's offered rate?

        Three signals, any of which marks the rung saturated: load was
        shed, the p99 blew the latency bound, or completed throughput
        fell below ``min_throughput_ratio`` of the offered rate (below
        capacity the service tracks arrivals, so a large deficit means
        the queue was still draining long after the last arrival — the
        robust signal on short runs, where p99 is one slow
        consultation).
        """
        deficit = (
            self.offered_rate > 0.0
            and self.throughput < min_throughput_ratio * self.offered_rate
        )
        return self.shed > 0 or self.p99_ms > p99_bound_ms or deficit


def run_load(service, agent_name: str, stream: Sequence[StreamEntry],
             schedule: ArrivalSchedule, time_scale: float = 1.0,
             mode: str = "auto", drain_poll_s: float = 0.0005) -> LoadReport:
    """Drive one open-loop run; returns the measured :class:`LoadReport`.

    ``stream`` entries must already be published (see
    :func:`publish_stream`) — publishing is setup, not load.  Arrival
    ``i`` submits stream entry ``i``; the schedule and stream must be
    equally long.  ``time_scale`` stretches (or compresses) the whole
    schedule without re-deriving it, so one seeded schedule serves a
    rate ladder.

    The caller's thread is the drainer: it pumps ``service.drain()``
    until the submitter thread finishes and the queue is empty.  With
    ``mode="inline"`` (or forced serial / thread-less interpreters) the
    arrivals are paced on the single thread instead — drains then delay
    admissions, so the run is open-loop in intent only and the report
    says so.
    """
    if len(stream) != len(schedule):
        raise GameError("stream and schedule lengths must match")
    if mode not in ("auto", "open-loop", "inline"):
        raise GameError(f"unknown load mode {mode!r}")
    if time_scale != 1.0:
        schedule = schedule.scaled(time_scale)
    if mode == "auto":
        mode = "inline" if pools_disabled() else "open-loop"
    futures: list = [None] * len(stream)
    shed: list[int] = []

    def admit(index: int) -> None:
        try:
            futures[index] = service.submit(
                agent_name, stream[index].game_id
            )
        except AdmissionError:
            shed.append(index)

    if mode == "open-loop":
        started = time.perf_counter()
        done = threading.Event()

        def submitter() -> None:
            try:
                for index, offset in enumerate(schedule.offsets):
                    delay = offset - (time.perf_counter() - started)
                    if delay > 0:
                        time.sleep(delay)
                    admit(index)
            finally:
                done.set()

        thread = threading.Thread(
            target=submitter, name="repro-load-submitter", daemon=True
        )
        try:
            thread.start()
        except RuntimeError:
            mode = "inline"  # no threads: pace on this thread instead
        else:
            while not done.is_set() or service.pending_count:
                if service.drain() == 0 and not done.is_set():
                    time.sleep(drain_poll_s)
            thread.join()
            service.drain()  # late admissions between the final checks
            duration = time.perf_counter() - started
    if mode == "inline":
        started = time.perf_counter()
        index = 0
        while index < len(stream):
            due = schedule.offsets[index] - (time.perf_counter() - started)
            if due > 0:
                time.sleep(due)
            while index < len(stream) and schedule.offsets[index] \
                    <= time.perf_counter() - started:
                admit(index)
                index += 1
            service.drain()
        service.drain()
        duration = time.perf_counter() - started
    return _report(stream, schedule, futures, shed, duration, mode)


def _report(stream, schedule, futures, shed, duration: float,
            mode: str) -> LoadReport:
    latencies = []
    cache_counts: dict[str, int] = {}
    kind_counts: dict[str, int] = {}
    completed = failed = 0
    for entry, future in zip(stream, futures):
        if future is None:
            continue
        outcome = future.peek_outcome()
        if outcome is None:
            failed += 1
            continue
        completed += 1
        if future.latency_ms is not None:
            latencies.append(future.latency_ms)
        state = outcome.advice.cache or "uncached"
        cache_counts[state] = cache_counts.get(state, 0) + 1
        kind_counts[entry.kind] = kind_counts.get(entry.kind, 0) + 1
    return LoadReport(
        label=schedule.label,
        mode=mode,
        submitted=len(stream) - len(shed),
        completed=completed,
        failed=failed,
        shed=len(shed),
        duration_s=duration,
        offered_rate=schedule.offered_rate,
        throughput=completed / duration if duration > 0 else float("inf"),
        latency_ms=latency_summary(latencies),
        cache_counts=cache_counts,
        kind_counts=kind_counts,
    )


# ----------------------------------------------------------------------
# Saturation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SaturationResult:
    """The outcome of an offered-rate ladder scan.

    ``sustained_rate`` is the highest offered rate whose p99 stayed
    within the bound with nothing shed; ``saturation_rate`` is the
    first offered rate that blew it (``None`` when the ladder never
    saturated — the committed benches pick ladders that do).
    """

    p99_bound_ms: float
    sustained_rate: float | None
    saturation_rate: float | None
    reports: tuple[LoadReport, ...]


def find_saturation(run_at_rate: Callable[[float], LoadReport],
                    rates: Sequence[float],
                    p99_bound_ms: float) -> SaturationResult:
    """Walk the rate ladder until p99 exceeds the bound.

    ``run_at_rate`` runs one fresh load run at the offered rate (the
    caller chooses service construction, stream and warm-state policy)
    and returns its report.  Rates must be increasing; the scan stops
    at the first saturated rung.
    """
    if not rates:
        raise GameError("need at least one offered rate")
    if any(b <= a for a, b in zip(rates, rates[1:])):
        raise GameError("offered rates must be increasing")
    reports: list[LoadReport] = []
    sustained = saturation = None
    for rate in rates:
        report = run_at_rate(rate)
        reports.append(report)
        if report.saturated(p99_bound_ms):
            saturation = rate
            break
        sustained = rate
    return SaturationResult(
        p99_bound_ms=p99_bound_ms,
        sustained_rate=sustained,
        saturation_rate=saturation,
        reports=tuple(reports),
    )
