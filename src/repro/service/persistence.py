"""On-disk warm state for the cross-run solve cache.

The paper's central asymmetry — equilibrium *search* is PPAD-hard,
*verification* is polynomial — is what makes a restartable authority
sound: certified solutions may outlive the process that computed them
because re-checking a candidate on load is cheap (a handful of integer
dot products on the Lemma-1 lattice gate), while recomputing it is not.
This module is that idea as a wire format:

* **Exact.**  Every probability is serialized as a ``"num/den"`` string
  (the same canonicalization discipline as
  :func:`repro.fractions_util.exact_fingerprint` and the certificate
  wire format in :mod:`repro.proofs.serialize`): no float ever touches
  the file, so a round trip is bit-identical — the loaded profile *is*
  the stored profile.

* **Versioned.**  The document carries a format name and a schema
  version; a reader refuses anything it does not understand instead of
  guessing.  Decoding is strict throughout: unknown shapes, missing
  fields or malformed fractions raise :class:`PersistenceError`.

* **Tamper-evident.**  The document embeds a SHA-256 digest of its
  canonical payload encoding.  A truncated or bit-flipped file — or
  one whose entry *lists* are reordered or altered — fails the digest
  check and the whole load is rejected; the cache degrades to a clean
  miss, never to unverified advice.  (JSON object *key* order is
  immaterial by construction: the digest commits to the sorted-key
  canonical form, so re-keying an object changes nothing it protects.)

* **Atomic.**  :func:`write_cache_file` writes a temporary file in the
  target directory and ``os.replace``\\ s it into place — then fsyncs
  the *directory* as well, so the rename itself is on stable storage:
  a reader never observes a half-written document even if the writer
  dies mid-save, and a completed save survives power loss, not just a
  process crash.

Besides the whole-file snapshot format, this module speaks the
**journal frame** format used by :mod:`repro.server.journal` for
write-behind durability: one cache entry per frame, each frame a
single JSON line carrying its own SHA-256 digest.  A snapshot is
all-or-nothing; a journal degrades per frame — a torn tail (the normal
crash case) or a bit-flipped line rejects *that frame only*, and every
rejection is surfaced for the ``cache.load.rejected`` audit trail.

The digest is an *integrity* line, not the soundness line: soundness is
the Lemma-1 gate, which :class:`~repro.service.cache.SolveCache` runs
on every loaded profile against the caller's actual game before it is
first served (see the ``pending`` stores there).  A forged file with a
recomputed digest therefore still cannot make the cache serve a
non-equilibrium — its entries fail the gate at serve time and fall back
to a cold solve.  The one claim the gate cannot re-establish cheaply is
*completeness* of a stored enumeration set (that would be the PPAD-hard
step again); completeness rests on the digest, membership on the gate.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.errors import PersistenceError
from repro.games.profiles import MixedProfile
from repro.service import faults

#: Format tag every cache document must carry.
FORMAT_NAME = "repro.solve-cache"

#: Current schema version; readers reject any other value.
SCHEMA_VERSION = 1

_DIGEST_PREFIX = "sha256:"


# ----------------------------------------------------------------------
# Exact scalar and profile encoding
# ----------------------------------------------------------------------

def encode_fraction(value: Fraction) -> str:
    """``Fraction`` → canonical ``"num/den"`` string (always with a slash)."""
    return f"{value.numerator}/{value.denominator}"


def decode_fraction(text: Any) -> Fraction:
    """Strict inverse of :func:`encode_fraction`.

    Only canonical ``"num/den"`` strings are accepted — digits (with an
    optional leading ``-`` on the numerator) around one slash, positive
    denominator, lowest terms; no floats, bare ints, whitespace, ``+``
    signs or digit-group underscores — so a file produced by anything
    but :func:`encode_fraction` (or tampered into another shape) is
    rejected rather than coerced.
    """
    if not isinstance(text, str):
        raise PersistenceError(f"fraction encoding must be a string, got {text!r}")
    num, sep, den = text.partition("/")
    digits = num[1:] if num.startswith("-") else num
    if not sep or not digits.isascii() or not digits.isdigit() \
            or not den.isascii() or not den.isdigit():
        raise PersistenceError(f"non-canonical fraction encoding: {text!r}")
    try:
        value = Fraction(int(num), int(den))
    except ZeroDivisionError as exc:
        raise PersistenceError(f"malformed fraction encoding {text!r}: {exc}") from exc
    if encode_fraction(value) != text:  # lowest terms, no leading zeros
        raise PersistenceError(f"non-canonical fraction encoding: {text!r}")
    return value


def encode_profile(profile: MixedProfile) -> list[list[str]]:
    """Mixed profile → nested ``"num/den"`` rows, one per player."""
    return [
        [encode_fraction(p) for p in dist] for dist in profile.distributions
    ]


def decode_profile(rows: Any) -> MixedProfile:
    """Strict inverse of :func:`encode_profile`.

    The :class:`~repro.games.profiles.MixedProfile` constructor enforces
    that every row is an exact probability vector, so a structurally
    valid but non-stochastic encoding is rejected here — before the
    Lemma-1 gate ever sees it.
    """
    if not isinstance(rows, list) or not rows:
        raise PersistenceError(f"profile encoding must be a non-empty list: {rows!r}")
    try:
        return MixedProfile(
            tuple(tuple(decode_fraction(p) for p in dist) for dist in rows)
        )
    except PersistenceError:
        raise
    except Exception as exc:  # ProfileError, TypeError on bad nesting
        raise PersistenceError(f"malformed profile encoding: {exc}") from exc


def _decode_support_pair(pair: Any) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Strictly decode one ``(row_support, column_support)`` hint pair."""
    if not isinstance(pair, list) or len(pair) != 2:
        raise PersistenceError(f"support hint is not a two-sided pair: {pair!r}")
    sides = []
    for side in pair:
        if not isinstance(side, list) or not side:
            raise PersistenceError(f"support hint side is malformed: {side!r}")
        for action in side:
            if not isinstance(action, int) or isinstance(action, bool) or action < 0:
                raise PersistenceError(f"support hint action {action!r} is not an index")
        sides.append(tuple(side))
    return tuple(sides)


# ----------------------------------------------------------------------
# The document: payload, digest, schema header
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CacheState:
    """The serializable contents of a solve cache, in LRU order.

    ``profiles`` maps ``(fingerprint, method, mode)`` to a certified
    profile; ``sets`` maps ``(fingerprint, equal_size_only)`` to a full
    enumeration result; ``hints`` maps a shape to its winning-support
    pairs (most recent first).  Iteration order is oldest-first for the
    entry stores — a save/load round trip preserves eviction order.
    """

    profiles: dict[tuple[str, str, str], MixedProfile] = field(default_factory=dict)
    sets: dict[tuple[str, bool], tuple[MixedProfile, ...]] = field(default_factory=dict)
    hints: dict[tuple[int, int], list] = field(default_factory=dict)

    @property
    def entry_count(self) -> int:
        return len(self.profiles) + len(self.sets) + len(self.hints)


@dataclass(frozen=True)
class CacheLoadReport:
    """What a :func:`read_cache_file` / ``SolveCache.load`` attempt did.

    ``accepted`` is False for every rejection — missing file aside,
    that always means the whole document was discarded and the cache is
    serving clean misses; ``reason`` says why.
    """

    path: str
    accepted: bool
    reason: str | None = None
    profiles: int = 0
    sets: int = 0
    hints: int = 0

    @property
    def entry_count(self) -> int:
        return self.profiles + self.sets + self.hints

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "accepted": self.accepted,
            "reason": self.reason,
            "profiles": self.profiles,
            "sets": self.sets,
            "hints": self.hints,
        }


def encode_cache_state(state: CacheState) -> dict[str, Any]:
    """Cache contents → the canonical JSON-able payload dict."""
    return {
        "profiles": [
            {
                "fingerprint": fingerprint,
                "method": method,
                "mode": mode,
                "profile": encode_profile(profile),
            }
            for (fingerprint, method, mode), profile in state.profiles.items()
        ],
        "sets": [
            {
                "fingerprint": fingerprint,
                "equal_size_only": equal_size_only,
                "profiles": [encode_profile(p) for p in profiles],
            }
            for (fingerprint, equal_size_only), profiles in state.sets.items()
        ],
        "hints": [
            {
                "shape": list(shape),
                "pairs": [[list(rs), list(cs)] for rs, cs in pairs],
            }
            for shape, pairs in state.hints.items()
        ],
    }


def decode_cache_state(payload: Any) -> CacheState:
    """Strict inverse of :func:`encode_cache_state`."""
    if not isinstance(payload, dict):
        raise PersistenceError("cache payload is not an object")
    state = CacheState()
    try:
        for entry in payload.get("profiles", ()):
            key = (entry["fingerprint"], entry["method"], entry["mode"])
            if not all(isinstance(part, str) for part in key):
                raise PersistenceError(f"profile key is not three strings: {key!r}")
            if key in state.profiles:
                raise PersistenceError(f"duplicate profile key {key!r}")
            state.profiles[key] = decode_profile(entry["profile"])
        for entry in payload.get("sets", ()):
            fingerprint = entry["fingerprint"]
            if not isinstance(fingerprint, str):
                raise PersistenceError(f"set fingerprint is not a string: {fingerprint!r}")
            key = (fingerprint, bool(entry["equal_size_only"]))
            if key in state.sets:
                raise PersistenceError(f"duplicate set key {key!r}")
            state.sets[key] = tuple(
                decode_profile(p) for p in entry["profiles"]
            )
        for entry in payload.get("hints", ()):
            shape = entry["shape"]
            if (
                not isinstance(shape, list)
                or len(shape) != 2
                or not all(isinstance(n, int) and n > 0 for n in shape)
            ):
                raise PersistenceError(f"hint shape is malformed: {shape!r}")
            shape = (shape[0], shape[1])
            if shape in state.hints:
                raise PersistenceError(f"duplicate hint shape {shape!r}")
            state.hints[shape] = [
                _decode_support_pair(pair) for pair in entry["pairs"]
            ]
    except PersistenceError:
        raise
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed cache payload: {exc!r}") from exc
    return state


def _canonical_payload_bytes(payload: dict[str, Any]) -> bytes:
    """The byte string the digest commits to (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def payload_digest(payload: dict[str, Any]) -> str:
    return _DIGEST_PREFIX + hashlib.sha256(_canonical_payload_bytes(payload)).hexdigest()


def encode_document(state: CacheState) -> dict[str, Any]:
    """Wrap a payload in the versioned, digest-carrying document."""
    payload = encode_cache_state(state)
    return {
        "format": FORMAT_NAME,
        "schema": SCHEMA_VERSION,
        "digest": payload_digest(payload),
        "payload": payload,
    }


def decode_document(document: Any) -> CacheState:
    """Check format, schema and digest, then decode the payload.

    Any failure — this is the tamper/staleness gate — raises
    :class:`PersistenceError`; the caller turns that into a clean-miss
    empty cache plus a ``cache.load.rejected`` audit record.
    """
    if not isinstance(document, dict):
        raise PersistenceError("cache document is not an object")
    if document.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"not a solve-cache document (format={document.get('format')!r})"
        )
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported schema version {schema!r} (this reader speaks {SCHEMA_VERSION})"
        )
    digest = document.get("digest")
    payload = document.get("payload")
    if not isinstance(payload, dict) or not isinstance(digest, str):
        raise PersistenceError("cache document lacks a payload or digest")
    if digest != payload_digest(payload):
        raise PersistenceError("payload digest mismatch: file corrupted or tampered")
    return decode_cache_state(payload)


# ----------------------------------------------------------------------
# Journal frames: one cache entry per digest-carrying JSON line
# ----------------------------------------------------------------------

#: Format tag every journal frame must carry.
JOURNAL_FORMAT_NAME = "repro.solve-cache-journal"

#: Journal frame schema version; readers reject any other value.
JOURNAL_SCHEMA_VERSION = 1

#: The three journalable entry kinds (mirroring the cache's stores).
JOURNAL_KINDS = ("profile", "set", "hint")


def encode_journal_body(kind: str, key, value) -> dict[str, Any]:
    """One cache update → the canonical frame body (no digest yet).

    ``kind``/``key``/``value`` use the cache's own vocabulary: a
    ``"profile"`` is keyed ``(fingerprint, method, mode)``, a ``"set"``
    ``(fingerprint, equal_size_only)``, a ``"hint"`` by its shape with
    the value being one ``(row_support, col_support)`` pair.
    """
    if kind == "profile":
        fingerprint, method, mode = key
        return {
            "format": JOURNAL_FORMAT_NAME,
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": "profile",
            "fingerprint": fingerprint,
            "method": method,
            "mode": mode,
            "profile": encode_profile(value),
        }
    if kind == "set":
        fingerprint, equal_size_only = key
        return {
            "format": JOURNAL_FORMAT_NAME,
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": "set",
            "fingerprint": fingerprint,
            "equal_size_only": bool(equal_size_only),
            "profiles": [encode_profile(p) for p in value],
        }
    if kind == "hint":
        return {
            "format": JOURNAL_FORMAT_NAME,
            "schema": JOURNAL_SCHEMA_VERSION,
            "kind": "hint",
            "shape": [int(key[0]), int(key[1])],
            "pair": [list(value[0]), list(value[1])],
        }
    raise PersistenceError(f"unknown journal entry kind {kind!r}")


def encode_journal_frame(kind: str, key, value) -> bytes:
    """One cache update → one self-digesting JSON line (with newline)."""
    body = encode_journal_body(kind, key, value)
    frame = {"digest": payload_digest(body), "body": body}
    return _canonical_payload_bytes(frame) + b"\n"


def decode_journal_frame(line: bytes):
    """Strict inverse of :func:`encode_journal_frame`.

    Returns ``(kind, key, value)`` in the cache's vocabulary.  Raises
    :class:`PersistenceError` on *anything* wrong with the frame —
    torn/non-JSON line, missing or mismatching digest, wrong format tag
    or schema, malformed entry — so a journal replay can reject the one
    frame and keep the rest.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"journal frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise PersistenceError("journal frame is not an object")
    digest = frame.get("digest")
    body = frame.get("body")
    if not isinstance(body, dict) or not isinstance(digest, str):
        raise PersistenceError("journal frame lacks a body or digest")
    if digest != payload_digest(body):
        raise PersistenceError("journal frame digest mismatch: torn or tampered")
    if body.get("format") != JOURNAL_FORMAT_NAME:
        raise PersistenceError(
            f"not a journal frame (format={body.get('format')!r})"
        )
    if body.get("schema") != JOURNAL_SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported journal schema {body.get('schema')!r} "
            f"(this reader speaks {JOURNAL_SCHEMA_VERSION})"
        )
    kind = body.get("kind")
    try:
        if kind == "profile":
            key = (body["fingerprint"], body["method"], body["mode"])
            if not all(isinstance(part, str) for part in key):
                raise PersistenceError(
                    f"profile frame key is not three strings: {key!r}"
                )
            return "profile", key, decode_profile(body["profile"])
        if kind == "set":
            fingerprint = body["fingerprint"]
            if not isinstance(fingerprint, str):
                raise PersistenceError(
                    f"set frame fingerprint is not a string: {fingerprint!r}"
                )
            key = (fingerprint, bool(body["equal_size_only"]))
            return "set", key, tuple(
                decode_profile(p) for p in body["profiles"]
            )
        if kind == "hint":
            shape = body["shape"]
            if (
                not isinstance(shape, list)
                or len(shape) != 2
                or not all(isinstance(n, int) and n > 0 for n in shape)
            ):
                raise PersistenceError(f"hint frame shape is malformed: {shape!r}")
            return "hint", (shape[0], shape[1]), _decode_support_pair(
                body["pair"]
            )
    except PersistenceError:
        raise
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed journal frame: {exc!r}") from exc
    raise PersistenceError(f"unknown journal frame kind {kind!r}")


def apply_journal_entry(state: CacheState, kind: str, key, value) -> None:
    """Fold one decoded frame into a :class:`CacheState` (latest wins).

    Hint frames append one pair to the shape's list (most recent last —
    the cache's merge reverses recency on load, matching snapshots).
    """
    if kind == "profile":
        state.profiles[key] = value
    elif kind == "set":
        state.sets[key] = value
    elif kind == "hint":
        pairs = state.hints.setdefault(key, [])
        if value in pairs:
            pairs.remove(value)
        pairs.append(value)
    else:  # pragma: no cover - decode_journal_frame already refused it
        raise PersistenceError(f"unknown journal entry kind {kind!r}")


# ----------------------------------------------------------------------
# Atomic file I/O
# ----------------------------------------------------------------------

def fsync_directory(directory) -> None:
    """fsync a directory so a rename/create inside it survives power loss.

    Platforms without directory fds (Windows) simply skip — the
    ``os.replace`` there is still atomic against process crashes, which
    is the strongest guarantee the OS offers us.
    """
    try:
        fd = os.open(os.fspath(directory) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def write_cache_file(path, state: CacheState) -> int:
    """Atomically write ``state`` to ``path``; returns bytes written.

    The document lands via temp-file-in-the-same-directory +
    ``os.replace`` (with an fsync in between), so concurrent readers —
    and a reader after a mid-save crash — see either the old complete
    file or the new complete file, never a torn one.  The containing
    directory is fsynced after the replace: the data was already on
    stable storage, but the *rename* lives in the directory, and an
    unsynced directory entry can vanish on power loss, silently
    resurrecting the old file.
    """
    path = os.fspath(path)
    text = json.dumps(encode_document(state), sort_keys=True, indent=1) + "\n"
    data = faults.filter_bytes("snapshot.write", text.encode("utf-8"))
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=".solve-cache-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates 0600 files; keep the target's existing mode
        # (0644 for a fresh file — probing the umask would mutate
        # process-global state, which concurrent save() forbids) so a
        # save never silently locks other readers out of the warm state.
        try:
            mode = os.stat(path).st_mode & 0o777
        except OSError:
            mode = 0o644
        os.chmod(tmp_path, mode)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)
    return len(data)


def read_cache_file(path) -> CacheState:
    """Read, integrity-check and strictly decode a cache document.

    Raises :class:`PersistenceError` on *any* problem other than the
    underlying OS read itself — not-JSON, wrong format tag, stale
    schema, digest mismatch, malformed entries.  ``FileNotFoundError``
    propagates so callers can tell "no warm state yet" from "warm state
    rejected".
    """
    with open(os.fspath(path), "rb") as handle:
        data = handle.read()
    data = faults.filter_bytes("cache.load", data)
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cache file is not valid JSON: {exc}") from exc
    return decode_document(document)
